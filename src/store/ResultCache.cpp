//===- store/ResultCache.cpp - Content-addressed result cache ------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/ResultCache.h"

#include "store/Serialization.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <filesystem>

#ifndef _WIN32
#include <sys/stat.h>
#endif

using namespace clgen;
using namespace clgen::store;
using namespace clgen::runtime;

//===----------------------------------------------------------------------===//
// Key recipes
//===----------------------------------------------------------------------===//

namespace {

void serializeDriverOptions(ArchiveWriter &W, const DriverOptions &Opts) {
  W.writeU64(Opts.GlobalSize);
  W.writeU64(Opts.LocalSize);
  W.writeBool(Opts.RunDynamicCheck);
  W.writeU64(Opts.MaxSimulatedGroups);
  W.writeU64(Opts.MaxInstructions);
  W.writeU64(Opts.Seed);
  // TrapDivZero changes kernel-visible semantics, so it is part of the
  // recipe. The fault-tolerance knobs (WatchdogMs, MaxRetries,
  // RetryBackoffMs) deliberately are NOT: they can only turn a
  // measurement into a failure, never alter a successful measurement,
  // and failures are not cached. Dispatch is excluded too: every
  // dispatch mode produces bit-identical measurements (the VM's
  // trap-parity contract, enforced by DispatchParityTest), so keying on
  // it would only split the cache and re-measure identical results.
  W.writeBool(Opts.TrapDivZero);
}

void serializeDeviceModel(ArchiveWriter &W, const DeviceModel &D) {
  W.writeString(D.Name);
  W.writeU8(static_cast<uint8_t>(D.Kind));
  W.writeF64(D.FrequencyGHz);
  W.writeF64(D.ParallelLanes);
  W.writeF64(D.ComputeOpCost);
  W.writeF64(D.MathCallCost);
  W.writeF64(D.CoalescedAccessCost);
  W.writeF64(D.UncoalescedAccessCost);
  W.writeF64(D.LocalAccessCost);
  W.writeF64(D.PrivateAccessCost);
  W.writeF64(D.BranchCost);
  W.writeF64(D.DivergencePenalty);
  W.writeF64(D.AtomicCost);
  W.writeF64(D.BarrierCost);
  W.writeF64(D.TransferGBPerSec);
  W.writeF64(D.LaunchOverheadUs);
}

void serializePlatform(ArchiveWriter &W, const Platform &P) {
  W.writeString(P.Name);
  serializeDeviceModel(W, P.Cpu);
  serializeDeviceModel(W, P.Gpu);
}

} // namespace

uint64_t store::measurementKey(const vm::CompiledKernel &Kernel,
                               const DriverOptions &Opts,
                               const Platform &P) {
  // 'B' keys digest the kernel's canonical content serialization: two
  // kernels that serialize identically execute identically under the
  // deterministic simulator.
  ArchiveWriter W(ArchiveKind::Measurement);
  W.writeU8('B');
  serializeCompiledKernel(W, Kernel);
  serializeDriverOptions(W, Opts);
  serializePlatform(W, P);
  return W.payloadDigest();
}

uint64_t store::measurementKey(const std::string &Source,
                               const DriverOptions &Opts,
                               const Platform &P) {
  ArchiveWriter W(ArchiveKind::Measurement);
  W.writeU8('S');
  W.writeString(Source);
  serializeDriverOptions(W, Opts);
  serializePlatform(W, P);
  return W.payloadDigest();
}

//===----------------------------------------------------------------------===//
// Measurement payload
//===----------------------------------------------------------------------===//

void store::serializeMeasurement(ArchiveWriter &W, const Measurement &M) {
  W.writeF64(M.CpuTime);
  W.writeF64(M.GpuTime);
  const vm::ExecCounters &C = M.Counters;
  W.writeU64(C.Instructions);
  W.writeU64(C.ComputeOps);
  W.writeU64(C.MathCalls);
  W.writeU64(C.GlobalLoads);
  W.writeU64(C.GlobalStores);
  W.writeU64(C.CoalescedGlobal);
  W.writeU64(C.LocalAccesses);
  W.writeU64(C.PrivateAccesses);
  W.writeU64(C.Branches);
  W.writeU64(C.AtomicOps);
  W.writeU64(C.Barriers);
  W.writeU64(C.ItemsTotal);
  W.writeU64(C.ItemsExecuted);
  W.writeF64(C.Divergence);
  W.writeU64(M.Transfer.BytesIn);
  W.writeU64(M.Transfer.BytesOut);
  W.writeU64(M.GlobalSize);
  W.writeU64(M.LocalSize);
}

Measurement store::deserializeMeasurement(ArchiveReader &R) {
  Measurement M;
  M.CpuTime = R.readF64();
  M.GpuTime = R.readF64();
  vm::ExecCounters &C = M.Counters;
  C.Instructions = R.readU64();
  C.ComputeOps = R.readU64();
  C.MathCalls = R.readU64();
  C.GlobalLoads = R.readU64();
  C.GlobalStores = R.readU64();
  C.CoalescedGlobal = R.readU64();
  C.LocalAccesses = R.readU64();
  C.PrivateAccesses = R.readU64();
  C.Branches = R.readU64();
  C.AtomicOps = R.readU64();
  C.Barriers = R.readU64();
  C.ItemsTotal = R.readU64();
  C.ItemsExecuted = R.readU64();
  C.Divergence = R.readF64();
  M.Transfer.BytesIn = R.readU64();
  M.Transfer.BytesOut = R.readU64();
  M.GlobalSize = R.readU64();
  M.LocalSize = R.readU64();
  return M;
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

ResultCache::ResultCache(std::string Directory) : Dir(std::move(Directory)) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  DirOk = !Ec && std::filesystem::is_directory(Dir, Ec);
}

std::string ResultCache::entryPath(uint64_t Key) const {
  return Dir + "/" + hexDigest(Key) + ".clgs";
}

namespace {

/// Backing-file identity probe: mtime (ns) + size in ONE stat syscall
/// on POSIX (std::filesystem would need two). Returns false when the
/// file is not statable.
bool statBacking(const std::string &Path, int64_t &MtimeNs,
                 uint64_t &Size) {
#ifndef _WIN32
  struct ::stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false;
  MtimeNs = static_cast<int64_t>(St.st_mtim.tv_sec) * 1000000000 +
            St.st_mtim.tv_nsec;
  Size = static_cast<uint64_t>(St.st_size);
  return true;
#else
  std::error_code Ec;
  auto Mtime = std::filesystem::last_write_time(Path, Ec);
  if (Ec)
    return false;
  auto Sz = std::filesystem::file_size(Path, Ec);
  if (Ec)
    return false;
  MtimeNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                Mtime.time_since_epoch())
                .count();
  Size = static_cast<uint64_t>(Sz);
  return true;
#endif
}

/// Reads the archive container's trailing 8-byte checksum (little
/// endian, see store/Archive.h). One small pread-equivalent; used only
/// on coarse-mtime filesystems where (mtime, size) alone cannot
/// distinguish a same-second same-size rewrite.
bool readTrailerChecksum(const std::string &Path, uint64_t &Sum) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  unsigned char Bytes[8];
  bool Ok = std::fseek(F, -8, SEEK_END) == 0 &&
            std::fread(Bytes, 1, 8, F) == 8;
  std::fclose(F);
  if (!Ok)
    return false;
  Sum = 0;
  for (int I = 0; I < 8; ++I)
    Sum |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return true;
}

/// A whole-second mtime signals a coarse-granularity filesystem (a real
/// nanosecond timestamp is whole-second with probability ~1e-9).
bool mtimeLooksCoarse(int64_t MtimeNs) {
  return MtimeNs % 1000000000 == 0;
}

} // namespace

bool ResultCache::recordBacking(uint64_t Key, Resident &R) const {
  if (!statBacking(entryPath(Key), R.MtimeNs, R.Size))
    return false;
  // Coarse mtime: (mtime, size) is not a sound identity on this
  // filesystem, so capture the trailer checksum as the tiebreaker. If
  // even that cannot be read, refuse to install — same contract as an
  // unstatable file.
  if (mtimeLooksCoarse(R.MtimeNs)) {
    if (!readTrailerChecksum(entryPath(Key), R.TrailerChecksum))
      return false;
    R.CoarseMtime = true;
  }
  R.Disk = true;
  return true;
}

std::optional<Measurement> ResultCache::lookup(uint64_t Key) {
  // Copy the resident entry out under the shared lock, then revalidate
  // OUTSIDE it: the stat syscall must not extend the critical section
  // writers queue behind. Resident entries are immutable once
  // inserted, so concurrent hits copy out in parallel.
  std::optional<Resident> Found;
  {
    std::shared_lock<std::shared_mutex> Lock(MapMutex);
    auto It = Memory.find(Key);
    if (It != Memory.end())
      Found = It->second;
  }
  if (!Found)
    return probeDisk(Key);

  // A disk-backed entry is served only while its file still matches
  // the recorded (mtime, size) — one stat, no read, no checksum — so
  // an external sweep's eviction is visible to this process instead of
  // being papered over by the memory front.
  if (Found->Disk) {
    int64_t MtimeNs = 0;
    uint64_t Size = 0;
    bool Fresh = statBacking(entryPath(Key), MtimeNs, Size) &&
                 MtimeNs == Found->MtimeNs && Size == Found->Size;
    // On a coarse-mtime filesystem a same-size rewrite within the same
    // second passes the stat probe; the trailer checksum recorded at
    // install time catches it (see Resident).
    if (Fresh && Found->CoarseMtime) {
      uint64_t Sum = 0;
      Fresh = readTrailerChecksum(entryPath(Key), Sum) &&
              Sum == Found->TrailerChecksum;
    }
    if (!Fresh) {
      // Stale: the backing file was evicted or replaced since it was
      // cached. Drop it and fall through to the disk probe, which
      // re-loads a replacement or reports the miss honestly.
      Counters.StaleMemoryEntries.fetch_add(1,
                                            std::memory_order_relaxed);
      // External sweeps race this process: volatile.
      CLGS_COUNT_V("clgen.cache.stale_memory_entries");
      std::unique_lock<std::shared_mutex> Lock(MapMutex);
      Memory.erase(Key);
      Lock.unlock();
      return probeDisk(Key);
    }
  }
  Counters.Hits.fetch_add(1, std::memory_order_relaxed);
  Counters.MemoryHits.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.cache.hits");
  CLGS_COUNT("clgen.cache.memory_hits");
  return std::move(Found->M);
}

std::optional<Measurement> ResultCache::probeDisk(uint64_t Key) {
  // Injected read fault: degrades to an honest miss (the caller
  // re-measures), exactly like an unreadable file.
  if (CLGS_FAILPOINT_KEYED("store.read", Key)) {
    Counters.Misses.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT("clgen.cache.misses");
    return std::nullopt;
  }
  // Disk probe outside the lock: archive reads are pure, and concurrent
  // probes of the same key just both hit.
  auto Opened = ArchiveReader::open(entryPath(Key),
                                    ArchiveKind::Measurement);
  if (!Opened.ok()) {
    std::error_code Ec;
    bool Exists = DirOk && std::filesystem::exists(entryPath(Key), Ec);
    Counters.Misses.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT("clgen.cache.misses");
    if (Exists) { // Present but unreadable: treated as a miss.
      Counters.BadEntries.fetch_add(1, std::memory_order_relaxed);
      CLGS_COUNT("clgen.cache.bad_entries");
    }
    return std::nullopt;
  }
  ArchiveReader R = Opened.take();
  Measurement M = deserializeMeasurement(R);
  if (!R.finish().ok()) {
    Counters.Misses.fetch_add(1, std::memory_order_relaxed);
    Counters.BadEntries.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT("clgen.cache.misses");
    CLGS_COUNT("clgen.cache.bad_entries");
    return std::nullopt;
  }

  Counters.Hits.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.cache.hits");
  Resident Entry;
  Entry.M = M;
  // Only a resident whose backing identity is known may enter the map:
  // if the file vanished between the read and the stat (an external
  // sweep racing us), inserting a revalidation-exempt entry would
  // resurrect the stale-hit bug. The caller still gets its (valid at
  // read time) measurement; the next lookup probes disk again.
  if (recordBacking(Key, Entry)) {
    std::unique_lock<std::shared_mutex> Lock(MapMutex);
    Memory.emplace(Key, std::move(Entry));
  }
  return M;
}

Status ResultCache::store(uint64_t Key, const Measurement &M) {
  CLGS_TRACE_SPAN("cache.write");
  Counters.Writes.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.cache.writes");
  Status S;
  if (!DirOk) {
    Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.cache.write_failures");
    S = Status::error("cache directory unavailable: " + Dir,
                      TrapKind::IoError);
  } else if (CLGS_FAILPOINT_KEYED("store.write", Key)) {
    // Injected write fault: degrades exactly like a failed disk write —
    // the entry stays memory-only and the pipeline carries on.
    Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.cache.write_failures");
    S = Status::error("injected fault at store.write", TrapKind::Injected);
  } else {
    ArchiveWriter W(ArchiveKind::Measurement);
    serializeMeasurement(W, M);
    S = W.saveTo(entryPath(Key));
    if (!S.ok()) {
      Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
      CLGS_COUNT_V("clgen.cache.write_failures");
    }
  }
  // Record the resident entry after the disk write so it can carry the
  // written file's identity. A FAILED write leaves a memory-only entry
  // (Disk false — nothing external can invalidate what was never
  // written), matching the pre-lifecycle degradation contract; a
  // successful write whose file cannot be statted afterwards (an
  // external sweep evicted it already) installs nothing, so the next
  // lookup reports the miss honestly instead of serving a
  // revalidation-exempt resident.
  Resident Entry;
  Entry.M = M;
  if (!S.ok() || recordBacking(Key, Entry)) {
    std::unique_lock<std::shared_mutex> Lock(MapMutex);
    Memory[Key] = std::move(Entry);
  }
  return S;
}

ResultCache::Stats ResultCache::stats() const {
  Stats Out;
  Out.Hits = Counters.Hits.load(std::memory_order_relaxed);
  Out.MemoryHits = Counters.MemoryHits.load(std::memory_order_relaxed);
  Out.Misses = Counters.Misses.load(std::memory_order_relaxed);
  Out.BadEntries = Counters.BadEntries.load(std::memory_order_relaxed);
  Out.Writes = Counters.Writes.load(std::memory_order_relaxed);
  Out.WriteFailures =
      Counters.WriteFailures.load(std::memory_order_relaxed);
  Out.StaleMemoryEntries =
      Counters.StaleMemoryEntries.load(std::memory_order_relaxed);
  return Out;
}

//===- model/NGramModel.h - Backoff n-gram language model --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Character-level n-gram language model with stupid-backoff smoothing.
///
/// Role in the reproduction: the paper trains a 3-layer x 2048-unit LSTM
/// for three weeks on a GTX Titan (section 4.2). That compute budget is
/// unavailable here, so the large-scale experiments (Figures 7-9), which
/// need thousands of accepted synthetic kernels, sample this model
/// instead: it trains in seconds on the full corpus and captures the
/// same "how humans write OpenCL" statistics at the character level. The
/// LSTM (model/LstmModel.h) implements the paper's architecture
/// faithfully and is exercised end-to-end at laptop scale.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_MODEL_NGRAMMODEL_H
#define CLGEN_MODEL_NGRAMMODEL_H

#include "model/LanguageModel.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace clgen {
namespace model {

struct NGramOptions {
  /// Model order: context length = Order - 1 characters.
  int Order = 10;
  /// Backoff multiplier per level (Brants et al. "stupid backoff").
  double BackoffAlpha = 0.4;
  /// Additive smoothing at the unigram level.
  double UnigramSmoothing = 0.1;
};

class NGramModel : public LanguageModel {
public:
  explicit NGramModel(NGramOptions Opts = NGramOptions()) : Opts(Opts) {}

  /// Trains on corpus entries (each a normalised kernel). Entries are
  /// separated by the end-of-text sentinel so the model learns kernel
  /// boundaries.
  void train(const std::vector<std::string> &Entries);

  // LanguageModel:
  const Vocabulary &vocabulary() const override { return Vocab; }
  void reset() override;
  void observe(int TokenId) override;
  std::vector<double> nextDistribution() override;

  /// Number of distinct contexts stored (all orders).
  size_t contextCount() const { return Counts.size(); }

private:
  NGramOptions Opts;
  Vocabulary Vocab;
  /// Context string -> (next-token id -> count). The empty context holds
  /// unigram counts.
  std::unordered_map<std::string, std::unordered_map<int, uint32_t>> Counts;
  /// Rolling context of the last Order-1 token ids (as chars).
  std::string Context;

  void addSequence(const std::string &Entry);
};

} // namespace model
} // namespace clgen

#endif // CLGEN_MODEL_NGRAMMODEL_H

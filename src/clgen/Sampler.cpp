//===- clgen/Sampler.cpp - Model sampling (Algorithm 1) -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Sampler.h"

#include "support/StringUtils.h"

#include <cmath>
#include <limits>

using namespace clgen;
using namespace clgen::core;

ArgSpec ArgSpec::figure6() {
  ArgSpec Spec;
  Spec.ArgTypes = {"__global float*", "__global float*", "__global float*",
                   "const int"};
  return Spec;
}

std::string ArgSpec::seedText() const {
  std::string Seed = "__kernel void A(";
  for (size_t I = 0; I < ArgTypes.size(); ++I) {
    if (I != 0)
      Seed += ", ";
    Seed += ArgTypes[I];
    Seed += " ";
    Seed += sequentialName(I, false);
  }
  Seed += ") {";
  return Seed;
}

std::string core::freeModeSeed() { return "__kernel void A("; }

namespace {

/// Memoizing log-space temperature reweighting: w = exp(log(p)/T).
/// Smoothed distributions repeat one floor probability across most of
/// the vocabulary (bit-identically), so a single-entry memo collapses
/// nearly every exp/log pair; the few "real" probabilities each pay one.
struct TemperedWeight {
  double InvT;
  double LastP = -1.0;
  double LastW = 0.0;

  double operator()(double P) {
    if (P != LastP) {
      LastP = P;
      LastW = std::exp(std::log(P) * InvT);
    }
    return LastW;
  }
};

} // namespace

int core::drawToken(const std::vector<double> &Dist, double Temperature,
                    Rng &R) {
  if (Temperature <= 0.0)
    Temperature = 1e-3;
  // Cumulative (inverse-CDF) sampling from the p^(1/T) distribution in
  // two memoized passes — no pow() storm and no intermediate weight
  // vector. Exactly one uniform draw per emitted token keeps the RNG
  // stream advance independent of the distribution's content.
  TemperedWeight Weight{1.0 / Temperature};
  double Sum = 0.0;
  for (double P : Dist)
    if (P > 0.0)
      Sum += Weight(P);
  double Target = R.uniform() * Sum;
  if (Dist.empty() || Sum <= 0.0 || !std::isfinite(Sum))
    return model::Vocabulary::EndOfText;
  double Running = 0.0;
  int Last = model::Vocabulary::EndOfText;
  for (size_t I = 0; I < Dist.size(); ++I) {
    double P = Dist[I];
    if (P <= 0.0)
      continue;
    Running += Weight(P);
    Last = static_cast<int>(I);
    if (Target < Running)
      return Last;
  }
  // Floating-point shortfall at the tail: return the last nonzero entry.
  return Last;
}

std::optional<std::string> core::sampleKernel(model::LanguageModel &Model,
                                              const std::string &Seed,
                                              const SampleOptions &Opts,
                                              Rng &R) {
  const model::Vocabulary &Vocab = Model.vocabulary();

  // Algorithm 1, lines 1-2: S <- seed, d <- block depth of the seed.
  Model.reset();
  int Depth = 0;
  for (char C : Seed) {
    Model.observe(Vocab.idOf(C));
    if (C == '{')
      ++Depth;
    if (C == '}')
      --Depth;
  }
  if (Depth < 0)
    return std::nullopt; // Malformed seed: close before any open.

  std::string Sample = Seed;
  bool SeenOpen = Seed.find('{') != std::string::npos;
  std::vector<double> Dist; // Reused across tokens: no per-char allocs.
  // Lines 3-14: generate until the function block closes.
  while (Sample.size() < Opts.MaxLength) {
    Model.nextDistributionInto(Dist);
    int Token = drawToken(Dist, Opts.Temperature, R);
    if (Token == model::Vocabulary::EndOfText) {
      // The model ended the kernel itself; valid only if the block is
      // closed (free mode may legitimately end after the signature).
      if (Depth == 0 && SeenOpen)
        return Sample;
      return std::nullopt;
    }
    char C = Vocab.charOf(Token);
    if (C == '{') {
      ++Depth;
      SeenOpen = true;
    }
    if (C == '}') {
      if (Depth == 0)
        return std::nullopt; // Stray close: never a well-formed kernel.
      --Depth;
    }
    Sample += C;
    Model.observe(Token);
    if (C == '}' && Depth == 0)
      return Sample; // Exited the function block: stop sampling.
  }
  return std::nullopt; // Length cap reached before the kernel closed.
}

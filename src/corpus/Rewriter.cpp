//===- corpus/Rewriter.cpp - Source normalisation ------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Rewriter.h"

#include "ocl/AstPrinter.h"
#include "ocl/Builtins.h"
#include "ocl/Casting.h"
#include "ocl/Lexer.h"
#include "ocl/Parser.h"
#include "ocl/Sema.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace clgen;
using namespace clgen::corpus;
using namespace clgen::ocl;

namespace {

/// Scoped renamer: walks the AST in source order, assigning sequential
/// names at declaration sites and resolving references through the scope
/// stack.
class Renamer {
public:
  explicit Renamer(Program &P) : P(P) {}

  void run() {
    // Function names first (their order of appearance).
    std::unordered_map<std::string, std::string> FunctionNames;
    size_t FnIndex = 0;
    for (auto &F : P.Functions)
      FunctionNames[F->Name] = sequentialName(FnIndex++, true);

    pushScope();
    // File-scope constants join the variable series first.
    for (auto &GC : P.Constants) {
      if (GC.Init)
        renameExpr(GC.Init.get());
      GC.Name = declare(GC.Name);
    }
    Functions = std::move(FunctionNames);
    for (auto &F : P.Functions) {
      F->Name = Functions[F->Name];
      pushScope();
      for (ParamDecl &Param : F->Params)
        Param.Name = declare(Param.Name);
      renameStmt(F->Body.get());
      popScope();
    }
    popScope();
  }

private:
  Program &P;
  size_t VarIndex = 0;
  std::vector<std::unordered_map<std::string, std::string>> Scopes;
  std::unordered_map<std::string, std::string> Functions;

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  std::string declare(const std::string &Old) {
    std::string Fresh = sequentialName(VarIndex++, false);
    Scopes.back()[Old] = Fresh;
    return Fresh;
  }

  std::string resolve(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return Name; // Builtin constants etc. stay as-is.
  }

  void renameExpr(Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
      return;
    case Expr::Kind::VarRef: {
      auto *VR = cast<VarRefExpr>(E);
      VR->Name = resolve(VR->Name);
      return;
    }
    case Expr::Kind::Binary: {
      auto *BE = cast<BinaryExpr>(E);
      renameExpr(BE->Lhs.get());
      renameExpr(BE->Rhs.get());
      return;
    }
    case Expr::Kind::Unary:
      renameExpr(cast<UnaryExpr>(E)->Operand.get());
      return;
    case Expr::Kind::Call: {
      auto *CE = cast<CallExpr>(E);
      if (!isBuiltinFunction(CE->Callee)) {
        auto It = Functions.find(CE->Callee);
        if (It != Functions.end())
          CE->Callee = It->second;
      }
      for (auto &Arg : CE->Args)
        renameExpr(Arg.get());
      return;
    }
    case Expr::Kind::Index: {
      auto *IE = cast<IndexExpr>(E);
      renameExpr(IE->Base.get());
      renameExpr(IE->Index.get());
      return;
    }
    case Expr::Kind::Member:
      renameExpr(cast<MemberExpr>(E)->Base.get());
      return;
    case Expr::Kind::Cast:
      renameExpr(cast<CastExpr>(E)->Operand.get());
      return;
    case Expr::Kind::VectorLiteral:
      for (auto &Elem : cast<VectorLiteralExpr>(E)->Elements)
        renameExpr(Elem.get());
      return;
    case Expr::Kind::Conditional: {
      auto *CE = cast<ConditionalExpr>(E);
      renameExpr(CE->Cond.get());
      renameExpr(CE->TrueExpr.get());
      renameExpr(CE->FalseExpr.get());
      return;
    }
    }
  }

  void renameStmt(Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Compound: {
      pushScope();
      for (auto &Child : cast<CompoundStmt>(S)->Body)
        renameStmt(Child.get());
      popScope();
      return;
    }
    case Stmt::Kind::Decl: {
      auto *DS = cast<DeclStmt>(S);
      if (DS->Init)
        renameExpr(DS->Init.get());
      DS->Name = declare(DS->Name);
      return;
    }
    case Stmt::Kind::Expr:
      renameExpr(cast<ExprStmt>(S)->E.get());
      return;
    case Stmt::Kind::If: {
      auto *IS = cast<IfStmt>(S);
      renameExpr(IS->Cond.get());
      renameStmt(IS->Then.get());
      if (IS->Else)
        renameStmt(IS->Else.get());
      return;
    }
    case Stmt::Kind::For: {
      auto *FS = cast<ForStmt>(S);
      pushScope();
      if (FS->Init)
        renameStmt(FS->Init.get());
      if (FS->Cond)
        renameExpr(FS->Cond.get());
      if (FS->Step)
        renameExpr(FS->Step.get());
      renameStmt(FS->Body.get());
      popScope();
      return;
    }
    case Stmt::Kind::While: {
      auto *WS = cast<WhileStmt>(S);
      renameExpr(WS->Cond.get());
      renameStmt(WS->Body.get());
      return;
    }
    case Stmt::Kind::Do: {
      auto *DS = cast<DoStmt>(S);
      renameStmt(DS->Body.get());
      renameExpr(DS->Cond.get());
      return;
    }
    case Stmt::Kind::Return: {
      auto *RS = cast<ReturnStmt>(S);
      if (RS->Value)
        renameExpr(RS->Value.get());
      return;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Empty:
      return;
    }
  }
};

} // namespace

void corpus::renameIdentifiers(Program &P) {
  Renamer R(P);
  R.run();
}

Result<std::string>
corpus::rewriteSource(const std::string &PreprocessedSource) {
  auto Parsed = parseProgram(PreprocessedSource);
  if (!Parsed.ok())
    return Result<std::string>::error(Parsed.errorMessage());
  auto Prog = Parsed.take();
  Status S = analyze(*Prog);
  if (!S.ok())
    return Result<std::string>::error(S.errorMessage());
  renameIdentifiers(*Prog);
  return printProgram(*Prog);
}

size_t corpus::identifierVocabularySize(const std::string &Source) {
  std::unordered_set<std::string> Names;
  for (const Token &T : lex(Source))
    if (T.Kind == TokenKind::Identifier)
      Names.insert(T.Text);
  return Names.size();
}

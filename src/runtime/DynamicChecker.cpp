//===- runtime/DynamicChecker.cpp - Useful-work validation -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/DynamicChecker.h"

#include "vm/Interpreter.h"

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

const char *runtime::checkOutcomeName(CheckOutcome O) {
  switch (O) {
  case CheckOutcome::UsefulWork: return "useful work";
  case CheckOutcome::LaunchFailure: return "launch failure";
  case CheckOutcome::NoOutput: return "no output";
  case CheckOutcome::InputInsensitive: return "input insensitive";
  case CheckOutcome::NonDeterministic: return "non-deterministic";
  }
  return "?";
}

CheckResult runtime::checkKernel(const CompiledKernel &Kernel,
                                 const CheckOptions &Opts, Rng &R) {
  CheckResult Result;

  PayloadOptions POpts;
  POpts.GlobalSize = Opts.GlobalSize;
  POpts.LocalSize = Opts.LocalSize;

  // A1 = A2 and B1 = B2 by construction (clones); A1 != B1 with
  // overwhelming probability from independent random draws.
  Payload A1 = generatePayload(Kernel, POpts, R);
  Payload B1 = generatePayload(Kernel, POpts, R);
  Payload A2 = A1.clone();
  Payload B2 = B1.clone();
  Payload A1Before = A1.clone();
  Payload B1Before = B1.clone();

  LaunchConfig Config;
  Config.GlobalSize[0] = A1.GlobalSize;
  Config.LocalSize[0] = A1.LocalSize;
  Config.MaxInstructions = Opts.MaxInstructions;

  auto Execute = [&](Payload &P) -> bool {
    auto Run = launchKernel(Kernel, P.Args, P.Buffers, Config);
    if (!Run.ok()) {
      Result.Outcome = CheckOutcome::LaunchFailure;
      Result.Detail = Run.errorMessage();
      Result.Trap = Run.trap();
      return false;
    }
    return true;
  };

  if (!Execute(A1) || !Execute(B1) || !Execute(A2) || !Execute(B2))
    return Result;

  // "k has no output (for these inputs)".
  if (!outputsDiffer(Kernel, A1Before, A1, Opts.Epsilon) ||
      !outputsDiffer(Kernel, B1Before, B1, Opts.Epsilon)) {
    Result.Outcome = CheckOutcome::NoOutput;
    Result.Detail = "outputs equal inputs on both payloads";
    Result.Trap = TrapKind::CheckNoOutput;
    return Result;
  }

  // "k is input insensitive (for these inputs)".
  if (outputsEqual(Kernel, A1, B1, Opts.Epsilon) ||
      outputsEqual(Kernel, A2, B2, Opts.Epsilon)) {
    Result.Outcome = CheckOutcome::InputInsensitive;
    Result.Detail = "identical outputs for different input payloads";
    Result.Trap = TrapKind::CheckInputInsensitive;
    return Result;
  }

  // "k is non-deterministic".
  if (!outputsEqual(Kernel, A1, A2, Opts.Epsilon) ||
      !outputsEqual(Kernel, B1, B2, Opts.Epsilon)) {
    Result.Outcome = CheckOutcome::NonDeterministic;
    Result.Detail = "outputs differ across runs on identical payloads";
    Result.Trap = TrapKind::CheckNonDeterministic;
    return Result;
  }

  Result.Outcome = CheckOutcome::UsefulWork;
  return Result;
}

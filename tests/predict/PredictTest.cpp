//===- tests/predict/PredictTest.cpp - decision tree / PCA / evaluation -------===//

#include "predict/DecisionTree.h"
#include "predict/Evaluation.h"
#include "predict/Pca.h"

#include "store/Archive.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace clgen;
using namespace clgen::predict;

//===----------------------------------------------------------------------===//
// DecisionTree
//===----------------------------------------------------------------------===//

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 50; ++I) {
    X.push_back({static_cast<double>(I), 0.0});
    Y.push_back(I < 25 ? 0 : 1);
  }
  DecisionTree T;
  T.fit(X, Y);
  EXPECT_EQ(T.predict({10.0, 0.0}), 0);
  EXPECT_EQ(T.predict({40.0, 0.0}), 1);
}

TEST(DecisionTreeTest, LearnsConjunctionWithDepth) {
  // Label = (A > 0.5) && (B > 0.5): needs two levels of splits. (XOR is
  // not greedily learnable by CART: the first split has zero Gini gain.)
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (double A : {0.0, 0.3, 0.7, 1.0})
    for (double B : {0.0, 0.3, 0.7, 1.0})
      for (int Rep = 0; Rep < 3; ++Rep) {
        X.push_back({A, B});
        Y.push_back(A > 0.5 && B > 0.5 ? 1 : 0);
      }
  TreeOptions Opts;
  Opts.MinSamplesLeaf = 1;
  Opts.MinSamplesSplit = 2;
  DecisionTree T(Opts);
  T.fit(X, Y);
  EXPECT_EQ(T.predict({0.2, 0.9}), 0);
  EXPECT_EQ(T.predict({0.9, 0.2}), 0);
  EXPECT_EQ(T.predict({0.9, 0.9}), 1);
  EXPECT_EQ(T.predict({0.1, 0.1}), 0);
}

TEST(DecisionTreeTest, PureLabelsYieldSingleLeaf) {
  std::vector<std::vector<double>> X = {{1.0}, {2.0}, {3.0}};
  std::vector<int> Y = {1, 1, 1};
  DecisionTree T;
  T.fit(X, Y);
  EXPECT_EQ(T.nodeCount(), 1u);
  EXPECT_EQ(T.predict({9.0}), 1);
  EXPECT_DOUBLE_EQ(T.predictProbability({9.0}), 1.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  Rng R(5);
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 200; ++I) {
    X.push_back({R.uniform(), R.uniform()});
    Y.push_back(R.chance(0.5) ? 1 : 0);
  }
  TreeOptions Shallow;
  Shallow.MaxDepth = 2;
  DecisionTree TS(Shallow);
  TS.fit(X, Y);
  TreeOptions Deep;
  Deep.MaxDepth = 12;
  DecisionTree TD(Deep);
  TD.fit(X, Y);
  EXPECT_LE(TS.nodeCount(), 7u);
  EXPECT_GT(TD.nodeCount(), TS.nodeCount());
}

TEST(DecisionTreeTest, EmptyTrainingPredictsClassZero) {
  DecisionTree T;
  T.fit({}, {});
  EXPECT_EQ(T.predict({1.0, 2.0}), 0);
}

TEST(DecisionTreeTest, SplitTieBreaksToFirstFeature) {
  // Features 0 and 1 are identical copies, so every candidate split has
  // the same gain on both. Characterization: the strict `Gain >
  // BestGain` comparison keeps the FIRST feature scanned, so the tree
  // is deterministic in the face of ties.
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 20; ++I) {
    double V = static_cast<double>(I);
    X.push_back({V, V});
    Y.push_back(I < 10 ? 0 : 1);
  }
  TreeOptions Opts;
  Opts.MinSamplesLeaf = 1;
  Opts.MinSamplesSplit = 2;
  DecisionTree T(Opts);
  T.fit(X, Y);
  std::string Dump = T.dump({"first", "second"});
  EXPECT_NE(Dump.find("first <"), std::string::npos);
  EXPECT_EQ(Dump.find("second <"), std::string::npos);
}

TEST(DecisionTreeTest, LeafLabelTieGoesToGpu) {
  // A leaf with equally many 0s and 1s labels 1 (GPU): `Ones*2 >= Rows`
  // is the seed's documented tie direction; pin it.
  std::vector<std::vector<double>> X = {{1.0}, {1.0}};
  std::vector<int> Y = {0, 1};
  TreeOptions Opts;
  Opts.MinSamplesSplit = 8; // Forbid splitting: one leaf.
  DecisionTree T(Opts);
  T.fit(X, Y);
  EXPECT_EQ(T.nodeCount(), 1u);
  EXPECT_EQ(T.predict({1.0}), 1);
  EXPECT_DOUBLE_EQ(T.predictProbability({1.0}), 0.5);
}

TEST(DecisionTreeTest, SerializeRoundTripsExactly) {
  Rng R(17);
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 120; ++I) {
    X.push_back({R.uniform(), R.uniform() * 3, R.gaussian()});
    Y.push_back(X.back()[0] + X.back()[1] > 1.6 ? 1 : 0);
  }
  DecisionTree T;
  T.fit(X, Y);
  ASSERT_GT(T.nodeCount(), 1u);

  store::ArchiveWriter W(store::ArchiveKind::Predictor);
  T.serialize(W);
  auto Opened = store::ArchiveReader::fromBytes(
      W.finalize(), store::ArchiveKind::Predictor);
  ASSERT_TRUE(Opened.ok()) << Opened.errorMessage();
  store::ArchiveReader Reader = Opened.take();
  DecisionTree Back = DecisionTree::deserialize(Reader);
  ASSERT_TRUE(Reader.finish().ok()) << Reader.finish().errorMessage();

  EXPECT_EQ(Back.nodeCount(), T.nodeCount());
  for (const auto &Row : X) {
    EXPECT_EQ(Back.predict(Row), T.predict(Row));
    EXPECT_DOUBLE_EQ(Back.predictProbability(Row), T.predictProbability(Row));
  }
}

TEST(DecisionTreeTest, DeserializeRejectsCorruptStructure) {
  // A split node pointing at itself (or backwards) could loop a
  // prediction walk forever; deserialize must reject it and come back
  // untrained rather than trust the archive.
  store::ArchiveWriter W(store::ArchiveKind::Predictor);
  W.writeI32(10);  // MaxDepth
  W.writeU64(2);   // MinSamplesLeaf
  W.writeU64(4);   // MinSamplesSplit
  W.writeU64(1);   // Node count.
  W.writeBool(false); // Split node...
  W.writeI32(0);      // Feature 0
  W.writeF64(0.5);
  W.writeI32(0); // ...whose left child is itself.
  W.writeI32(0);
  W.writeI32(0);
  W.writeF64(0.0);
  auto Opened = store::ArchiveReader::fromBytes(
      W.finalize(), store::ArchiveKind::Predictor);
  ASSERT_TRUE(Opened.ok());
  store::ArchiveReader Reader = Opened.take();
  DecisionTree Back = DecisionTree::deserialize(Reader);
  EXPECT_FALSE(Reader.ok());
  EXPECT_FALSE(Back.trained());
}

TEST(DecisionTreeTest, DumpShowsStructure) {
  std::vector<std::vector<double>> X = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> Y = {0, 0, 1, 1};
  TreeOptions Opts;
  Opts.MinSamplesLeaf = 1;
  Opts.MinSamplesSplit = 2;
  DecisionTree T(Opts);
  T.fit(X, Y);
  std::string Dump = T.dump({"size"});
  EXPECT_NE(Dump.find("size <"), std::string::npos);
  EXPECT_NE(Dump.find("leaf"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PCA
//===----------------------------------------------------------------------===//

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the diagonal y = x with small noise: PC1 must align
  // with (1,1)/sqrt(2).
  Rng R(3);
  std::vector<std::vector<double>> X;
  for (int I = 0; I < 200; ++I) {
    double T = R.gaussian();
    X.push_back({T + 0.01 * R.gaussian(), T + 0.01 * R.gaussian()});
  }
  auto P = fitPca(X);
  double C0 = std::fabs(P.Components[0][0]);
  double C1 = std::fabs(P.Components[0][1]);
  EXPECT_NEAR(C0, C1, 0.05);
  EXPECT_GT(P.ExplainedVariance[0], 10.0 * P.ExplainedVariance[1]);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng R(11);
  std::vector<std::vector<double>> X;
  for (int I = 0; I < 100; ++I)
    X.push_back({R.uniform(), R.uniform() * 2, R.uniform() * 3,
                 R.gaussian()});
  auto P = fitPca(X);
  for (size_t A = 0; A < P.Components.size(); ++A) {
    for (size_t B = A; B < P.Components.size(); ++B) {
      double Dot = 0.0;
      for (size_t F = 0; F < P.Components[A].size(); ++F)
        Dot += P.Components[A][F] * P.Components[B][F];
      EXPECT_NEAR(Dot, A == B ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(PcaTest, ConstantColumnHandled) {
  std::vector<std::vector<double>> X = {
      {1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  auto P = fitPca(X);
  auto Proj = P.project({2.0, 5.0}, 2);
  EXPECT_EQ(Proj.size(), 2u);
  EXPECT_TRUE(std::isfinite(Proj[0]));
}

TEST(PcaTest, ProjectionCentersData) {
  std::vector<std::vector<double>> X = {
      {10.0, 1.0}, {12.0, 2.0}, {14.0, 3.0}, {16.0, 4.0}};
  auto P = fitPca(X);
  // The mean point projects to the origin.
  auto Proj = P.project({13.0, 2.5}, 2);
  EXPECT_NEAR(Proj[0], 0.0, 1e-9);
  EXPECT_NEAR(Proj[1], 0.0, 1e-9);
}

TEST(PcaTest, SignConventionIsDeterministic) {
  // Jacobi rotation directions depend on matrix entries, so without a
  // convention an eigenvector may come back negated between otherwise
  // identical fits. Regression: each component's first non-negligible
  // coordinate is positive.
  std::vector<std::vector<double>> X;
  Rng R(99);
  for (int I = 0; I < 40; ++I) {
    double T = R.gaussian();
    X.push_back({-T + 0.1 * R.gaussian(), T + 0.1 * R.gaussian()});
  }
  auto P = fitPca(X);
  for (const auto &C : P.Components) {
    size_t First = 0;
    while (First < C.size() && std::fabs(C[First]) <= 1e-12)
      ++First;
    ASSERT_LT(First, C.size());
    EXPECT_GT(C[First], 0.0);
  }
}

TEST(PcaTest, EigenvalueTiesOrderByFeatureIndex) {
  // Isotropic data: every direction explains the same variance, so the
  // eigenvalue sort alone cannot order the components. Regression for
  // the index tie-break: two fits of the same data must be identical.
  std::vector<std::vector<double>> X = {
      {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}};
  auto A = fitPca(X);
  auto B = fitPca(X);
  ASSERT_EQ(A.Components.size(), B.Components.size());
  for (size_t K = 0; K < A.Components.size(); ++K)
    for (size_t F = 0; F < A.Components[K].size(); ++F)
      EXPECT_DOUBLE_EQ(A.Components[K][F], B.Components[K][F]);
  ASSERT_EQ(A.ExplainedVariance.size(), 2u);
  EXPECT_NEAR(A.ExplainedVariance[0], A.ExplainedVariance[1], 1e-9);
}

//===----------------------------------------------------------------------===//
// Evaluation harness
//===----------------------------------------------------------------------===//

namespace {

Observation makeObs(const std::string &Bench, double F1, double Cpu,
                    double Gpu, const std::string &Dataset = "") {
  Observation O;
  O.Suite = "test";
  O.Benchmark = Bench;
  O.Dataset = Dataset;
  O.Raw.Static.Comp = F1;
  O.Raw.Static.Mem = 1;
  O.CpuTime = Cpu;
  O.GpuTime = Gpu;
  return O;
}

} // namespace

TEST(EvaluationTest, LabelsAndOracle) {
  Observation O = makeObs("x", 1, 2.0, 1.0);
  EXPECT_EQ(O.label(), 1);
  EXPECT_DOUBLE_EQ(O.oracleTime(), 1.0);
  EXPECT_DOUBLE_EQ(O.timeFor(0), 2.0);
}

TEST(EvaluationTest, StaticBestDevice) {
  std::vector<Observation> Obs = {makeObs("a", 1, 1.0, 3.0),
                                  makeObs("b", 2, 1.0, 3.0),
                                  makeObs("c", 3, 5.0, 1.0)};
  EXPECT_EQ(staticBestDevice(Obs), 0); // CPU total 7 < GPU total 7... 7=7
  Obs.push_back(makeObs("d", 4, 0.5, 3.0));
  EXPECT_EQ(staticBestDevice(Obs), 0);
}

TEST(EvaluationTest, PerfectPredictionsScoreOne) {
  std::vector<Observation> Obs = {makeObs("a", 1, 1.0, 2.0),
                                  makeObs("b", 2, 3.0, 1.0)};
  std::vector<int> Perfect = {0, 1};
  EXPECT_DOUBLE_EQ(performanceRelativeToOracle(Obs, Perfect), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(Obs, Perfect), 1.0);
}

TEST(EvaluationTest, WrongPredictionsScoreBelowOne) {
  std::vector<Observation> Obs = {makeObs("a", 1, 1.0, 4.0)};
  std::vector<int> Wrong = {1};
  EXPECT_DOUBLE_EQ(performanceRelativeToOracle(Obs, Wrong), 0.25);
}

TEST(EvaluationTest, SpeedupOverStatic) {
  // Static CPU; predictions pick GPU where it is 2x faster.
  std::vector<Observation> Obs = {makeObs("a", 1, 2.0, 1.0),
                                  makeObs("b", 2, 2.0, 1.0)};
  std::vector<int> Preds = {1, 1};
  EXPECT_DOUBLE_EQ(speedupOverStatic(Obs, Preds, 0), 2.0);
}

TEST(EvaluationTest, LeaveOneBenchmarkOutSeparatesGroups) {
  // Two benchmarks occupying the same feature point with opposite
  // labels: LOO must fail (no information), proving the fold really
  // excludes the held-out group.
  std::vector<Observation> Obs;
  for (int I = 0; I < 6; ++I)
    Obs.push_back(makeObs("gpuish", 5.0, 2.0, 1.0,
                          formatString("d%d", I)));
  for (int I = 0; I < 6; ++I)
    Obs.push_back(makeObs("cpuish", 5.0, 1.0, 2.0,
                          formatString("d%d", I)));
  auto CV = leaveOneBenchmarkOut(Obs, {}, FeatureSetKind::Grewe);
  // Each fold trains on the opposite-labelled twin: accuracy 0.
  EXPECT_DOUBLE_EQ(accuracy(Obs, CV.Predictions), 0.0);
}

TEST(EvaluationTest, ExtraTrainingInformsFolds) {
  // Same setup, but synthetic observations at the same feature point
  // carry the right label for one group's region (distinct F1 values).
  std::vector<Observation> Obs;
  for (int I = 0; I < 6; ++I)
    Obs.push_back(makeObs("gpuish", 10.0, 2.0, 1.0,
                          formatString("d%d", I)));
  for (int I = 0; I < 6; ++I)
    Obs.push_back(makeObs("cpuish", 1.0, 1.0, 2.0,
                          formatString("d%d", I)));
  std::vector<Observation> Synthetic;
  for (int I = 0; I < 8; ++I) {
    Synthetic.push_back(makeObs(formatString("syn%d", I),
                                I < 4 ? 9.5 : 1.5, I < 4 ? 2.0 : 1.0,
                                I < 4 ? 1.0 : 2.0));
  }
  auto Without = leaveOneBenchmarkOut(Obs, {}, FeatureSetKind::Grewe);
  auto With = leaveOneBenchmarkOut(Obs, Synthetic, FeatureSetKind::Grewe);
  EXPECT_GT(accuracy(Obs, With.Predictions),
            accuracy(Obs, Without.Predictions));
  EXPECT_DOUBLE_EQ(accuracy(Obs, With.Predictions), 1.0);
}

TEST(EvaluationTest, FeatureVectorKindsDiffer) {
  Observation O = makeObs("x", 3, 1.0, 2.0);
  EXPECT_EQ(featureVector(O, FeatureSetKind::Grewe).size(), 4u);
  EXPECT_EQ(featureVector(O, FeatureSetKind::Extended).size(), 11u);
}

//===----------------------------------------------------------------------===//
// K-fold cross-validation determinism
//===----------------------------------------------------------------------===//

namespace {

/// A mixed workload with enough benchmark groups to spread over folds.
std::vector<Observation> kfoldObs() {
  std::vector<Observation> Obs;
  for (int B = 0; B < 9; ++B) {
    bool Gpu = B % 2 == 0;
    for (int D = 0; D < 3; ++D)
      Obs.push_back(makeObs(formatString("bench%d", B),
                            Gpu ? 8.0 + D : 1.0 + D, Gpu ? 2.0 : 1.0,
                            Gpu ? 1.0 : 2.0, formatString("d%d", D)));
  }
  return Obs;
}

} // namespace

TEST(EvaluationTest, KFoldAssignmentMatchesDocumentedContract) {
  // The determinism contract in Evaluation.h: sorted group g lands in
  // fold Rng(Seed).split(g).bounded(Folds). Recompute it by hand.
  std::vector<Observation> Obs = kfoldObs();
  KFoldOptions Opts;
  Opts.Folds = 4;
  Opts.Seed = 0xF01DAB1E;
  auto R = kFoldCrossValidation(Obs, {}, FeatureSetKind::Grewe,
                                Opts, TreeOptions());
  ASSERT_EQ(R.FoldOf.size(), Obs.size());

  // Group keys are Suite + "/" + Benchmark, sorted lexicographically.
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Obs.size(); ++I)
    Groups[Obs[I].Suite + "/" + Obs[I].Benchmark].push_back(I);
  size_t G = 0;
  for (const auto &[Key, Members] : Groups) {
    int Expected =
        static_cast<int>(Rng(Opts.Seed).split(G).bounded(Opts.Folds));
    for (size_t I : Members)
      EXPECT_EQ(R.FoldOf[I], Expected) << Key;
    ++G;
  }
}

TEST(EvaluationTest, KFoldIsBitIdenticalForAnyWorkerCount) {
  std::vector<Observation> Obs = kfoldObs();
  std::vector<Observation> Extra = {makeObs("syn0", 9.0, 2.0, 1.0),
                                    makeObs("syn1", 1.5, 1.0, 2.0)};
  KFoldOptions Serial;
  Serial.Folds = 3;
  auto Base = kFoldCrossValidation(Obs, Extra, FeatureSetKind::Grewe,
                                   Serial, TreeOptions());
  for (unsigned Workers : {2u, 4u, 0u}) {
    KFoldOptions Opts = Serial;
    Opts.Workers = Workers;
    auto R = kFoldCrossValidation(Obs, Extra, FeatureSetKind::Grewe,
                                  Opts, TreeOptions());
    EXPECT_EQ(R.Predictions, Base.Predictions) << Workers;
    EXPECT_EQ(R.FoldOf, Base.FoldOf) << Workers;
    EXPECT_EQ(R.FoldsTrained, Base.FoldsTrained) << Workers;
  }
}

TEST(EvaluationTest, KFoldSeedIsSemantic) {
  // Unlike Workers, the fold seed must be able to change predictions:
  // it decides which benchmarks are held out together.
  std::vector<Observation> Obs = kfoldObs();
  KFoldOptions A, B;
  A.Folds = B.Folds = 3;
  B.Seed = A.Seed + 1;
  auto Ra = kFoldCrossValidation(Obs, {}, FeatureSetKind::Grewe,
                                 A, TreeOptions());
  auto Rb = kFoldCrossValidation(Obs, {}, FeatureSetKind::Grewe,
                                 B, TreeOptions());
  EXPECT_NE(Ra.FoldOf, Rb.FoldOf);
}

//===- runtime/Device.cpp - Simulated CPU/GPU device models ------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parameter calibration notes. The numbers below are synthetic but chosen
// so the simulated platforms reproduce the qualitative behaviour of the
// paper's testbeds:
//  - the CPU is a 4-core 3.6 GHz part with 8-wide SIMD (32 effective
//    lanes); strided access defeats vectorisation (higher uncoalesced
//    cost) but there is no divergence penalty and no transfer cost;
//  - both GPUs have thousands of lanes and cheap local memory, pay
//    heavily for uncoalesced access and divergence, and move data over
//    PCIe;
//  - the AMD system models a slower interconnect and higher launch
//    overhead than the NVIDIA one, which biases the AMD platform towards
//    CPU execution exactly as in the paper (the best static mapping is
//    CPU-only on AMD and GPU-only on NVIDIA, section 8.1).
//
//===----------------------------------------------------------------------===//

#include "runtime/Device.h"

using namespace clgen;
using namespace clgen::runtime;

DeviceModel runtime::intelI7_3820() {
  DeviceModel D;
  D.Name = "Intel Core i7-3820";
  D.Kind = DeviceKind::Cpu;
  D.FrequencyGHz = 3.6;
  D.ParallelLanes = 32.0; // 4 cores x 8-wide AVX.
  D.ComputeOpCost = 1.0;
  D.MathCallCost = 8.0;
  D.CoalescedAccessCost = 2.0;
  D.UncoalescedAccessCost = 6.0; // Cache miss + defeats vectorisation.
  D.LocalAccessCost = 2.0;       // No dedicated scratchpad: plain memory.
  D.PrivateAccessCost = 1.0;
  D.BranchCost = 1.0;
  D.DivergencePenalty = 0.0; // Scalar cores do not diverge.
  D.AtomicCost = 12.0;
  D.BarrierCost = 24.0; // Software barrier.
  D.TransferGBPerSec = 0.0; // Zero-copy: data is already in host memory.
  D.LaunchOverheadUs = 5.0;
  return D;
}

DeviceModel runtime::amdTahiti7970() {
  DeviceModel D;
  D.Name = "AMD Tahiti 7970";
  D.Kind = DeviceKind::Gpu;
  D.FrequencyGHz = 1.0;
  D.ParallelLanes = 2048.0;
  D.ComputeOpCost = 1.0;
  D.MathCallCost = 4.0;
  D.CoalescedAccessCost = 4.0;
  D.UncoalescedAccessCost = 40.0;
  D.LocalAccessCost = 1.0;
  D.PrivateAccessCost = 1.0;
  D.BranchCost = 2.0;
  D.DivergencePenalty = 8.0;
  D.AtomicCost = 24.0;
  D.BarrierCost = 8.0;
  D.TransferGBPerSec = 2.5;
  D.LaunchOverheadUs = 40.0;
  return D;
}

DeviceModel runtime::nvidiaGtx970() {
  DeviceModel D;
  D.Name = "NVIDIA GTX 970";
  D.Kind = DeviceKind::Gpu;
  D.FrequencyGHz = 1.05;
  D.ParallelLanes = 1664.0;
  D.ComputeOpCost = 1.0;
  D.MathCallCost = 4.0;
  D.CoalescedAccessCost = 3.5;
  D.UncoalescedAccessCost = 36.0;
  D.LocalAccessCost = 1.0;
  D.PrivateAccessCost = 1.0;
  D.BranchCost = 2.0;
  D.DivergencePenalty = 7.0;
  D.AtomicCost = 20.0;
  D.BarrierCost = 8.0;
  D.TransferGBPerSec = 12.0;
  D.LaunchOverheadUs = 15.0;
  return D;
}

Platform runtime::amdPlatform() {
  return {"AMD Tahiti 7970", intelI7_3820(), amdTahiti7970()};
}

Platform runtime::nvidiaPlatform() {
  return {"NVIDIA GTX 970", intelI7_3820(), nvidiaGtx970()};
}

//===- store/Serialization.cpp - Artifact save/load API ------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Serialization.h"

#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "store/Archive.h"

#include <cstring>

using namespace clgen;
using namespace clgen::store;

// Model payload = [string backend tag][backend body]. The tag doubles as
// the schema selector on load; adding a backend means adding a tag, not
// bumping the container version.

Status store::saveModel(const std::string &Path,
                        const model::LanguageModel &M) {
  ArchiveWriter W(ArchiveKind::Model);
  const char *Backend = M.backendName();
  if (std::strcmp(Backend, "ngram") == 0) {
    W.writeString(Backend);
    static_cast<const model::NGramModel &>(M).serialize(W);
  } else if (std::strcmp(Backend, "lstm") == 0) {
    W.writeString(Backend);
    static_cast<const model::LstmModel &>(M).serialize(W);
  } else {
    return Status::error(std::string("model backend '") + Backend +
                         "' does not support serialization");
  }
  return W.saveTo(Path);
}

Result<std::unique_ptr<model::LanguageModel>>
store::loadModel(const std::string &Path) {
  using ModelResult = Result<std::unique_ptr<model::LanguageModel>>;
  auto Opened = ArchiveReader::open(Path, ArchiveKind::Model);
  if (!Opened.ok())
    return ModelResult::error(Opened.errorMessage());
  ArchiveReader R = Opened.take();

  std::string Backend = R.readString();
  std::unique_ptr<model::LanguageModel> M;
  if (Backend == "ngram")
    M = std::make_unique<model::NGramModel>(model::NGramModel::deserialize(R));
  else if (Backend == "lstm")
    M = std::make_unique<model::LstmModel>(model::LstmModel::deserialize(R));
  else if (R.ok())
    R.fail("unknown model backend tag '" + Backend + "'");

  Status Final = R.finish();
  if (!Final.ok())
    return ModelResult::error(Path + ": " + Final.errorMessage());
  return ModelResult(std::move(M));
}

void store::serializeCompiledKernel(ArchiveWriter &W,
                                    const vm::CompiledKernel &K) {
  W.writeString(K.Name);
  W.writeU64(K.Code.size());
  for (const vm::Instr &I : K.Code) {
    W.writeU8(static_cast<uint8_t>(I.Op));
    W.writeU8(I.Aux);
    W.writeU32(I.Dst);
    W.writeU32(I.A);
    W.writeU32(I.B);
    W.writeI32(I.Imm);
    W.writeBool(I.Coalesced);
    W.writeU8(I.WidthField);
    W.writeU8(static_cast<uint8_t>(I.Space));
  }
  W.writeU64(K.Consts.size());
  for (const vm::Value &V : K.Consts) {
    W.writeU8(V.Width);
    for (int L = 0; L < V.Width; ++L)
      W.writeF64(V.Lanes[L]);
  }
  W.writeU64(K.Masks.size());
  for (const auto &Mask : K.Masks) {
    W.writeU64(Mask.size());
    W.writeBytes(Mask.data(), Mask.size());
  }
  W.writeU64(K.ArgLists.size());
  for (const auto &Args : K.ArgLists) {
    W.writeU64(Args.size());
    for (uint16_t A : Args)
      W.writeU32(A);
  }
  W.writeU64(K.Params.size());
  for (const vm::ParamInfo &P : K.Params) {
    W.writeU8(static_cast<uint8_t>(P.Ty.S));
    W.writeU8(P.Ty.VecWidth);
    W.writeBool(P.Ty.Pointer);
    W.writeU8(static_cast<uint8_t>(P.Ty.AS));
    W.writeBool(P.Ty.Const);
    W.writeString(P.Name);
    W.writeBool(P.IsBuffer);
    W.writeI32(P.BufferSlot);
    W.writeU32(P.Reg);
  }
  W.writeU64(K.LocalBuffers.size());
  for (const vm::LocalBufferInfo &B : K.LocalBuffers) {
    W.writeU8(B.ElemWidth);
    W.writeI64(B.Elements);
  }
  W.writeU64(K.PrivateBuffers.size());
  for (const vm::PrivateBufferInfo &B : K.PrivateBuffers) {
    W.writeU8(B.ElemWidth);
    W.writeI64(B.Elements);
  }
  W.writeU64(K.AccessSites.size());
  for (const vm::AccessSite &S : K.AccessSites) {
    W.writeU8(static_cast<uint8_t>(S.Space));
    W.writeBool(S.IsStore);
    W.writeBool(S.Coalesced);
  }
  W.writeU32(K.RegisterCount);
  W.writeI32(K.BranchSites);
  W.writeBool(K.HasBarrier);
}

vm::CompiledKernel store::deserializeCompiledKernel(ArchiveReader &R) {
  vm::CompiledKernel K;
  K.Name = R.readString();
  uint64_t CodeSize = R.readU64();
  for (uint64_t I = 0; I < CodeSize && R.ok(); ++I) {
    vm::Instr In;
    In.Op = static_cast<vm::Opcode>(R.readU8());
    In.Aux = R.readU8();
    In.Dst = static_cast<uint16_t>(R.readU32());
    In.A = static_cast<uint16_t>(R.readU32());
    In.B = static_cast<uint16_t>(R.readU32());
    In.Imm = R.readI32();
    In.Coalesced = R.readBool();
    In.WidthField = R.readU8();
    In.Space = static_cast<vm::MemSpace>(R.readU8());
    K.Code.push_back(In);
  }
  uint64_t ConstCount = R.readU64();
  for (uint64_t I = 0; I < ConstCount && R.ok(); ++I) {
    vm::Value V;
    V.Width = R.readU8();
    if (V.Width > 16) {
      R.fail("kernel constant with impossible lane width");
      break;
    }
    for (int L = 0; L < V.Width; ++L)
      V.Lanes[L] = R.readF64();
    K.Consts.push_back(V);
  }
  uint64_t MaskCount = R.readU64();
  for (uint64_t I = 0; I < MaskCount && R.ok(); ++I) {
    std::string Bytes = R.readString();
    K.Masks.emplace_back(Bytes.begin(), Bytes.end());
  }
  uint64_t ArgListCount = R.readU64();
  for (uint64_t I = 0; I < ArgListCount && R.ok(); ++I) {
    uint64_t Len = R.readU64();
    std::vector<uint16_t> Args;
    for (uint64_t J = 0; J < Len && R.ok(); ++J)
      Args.push_back(static_cast<uint16_t>(R.readU32()));
    K.ArgLists.push_back(std::move(Args));
  }
  uint64_t ParamCount = R.readU64();
  for (uint64_t I = 0; I < ParamCount && R.ok(); ++I) {
    vm::ParamInfo P;
    P.Ty.S = static_cast<ocl::Scalar>(R.readU8());
    P.Ty.VecWidth = R.readU8();
    P.Ty.Pointer = R.readBool();
    P.Ty.AS = static_cast<ocl::AddrSpace>(R.readU8());
    P.Ty.Const = R.readBool();
    P.Name = R.readString();
    P.IsBuffer = R.readBool();
    P.BufferSlot = R.readI32();
    P.Reg = static_cast<uint16_t>(R.readU32());
    K.Params.push_back(std::move(P));
  }
  uint64_t LocalCount = R.readU64();
  for (uint64_t I = 0; I < LocalCount && R.ok(); ++I) {
    vm::LocalBufferInfo B;
    B.ElemWidth = R.readU8();
    B.Elements = R.readI64();
    K.LocalBuffers.push_back(B);
  }
  uint64_t PrivateCount = R.readU64();
  for (uint64_t I = 0; I < PrivateCount && R.ok(); ++I) {
    vm::PrivateBufferInfo B;
    B.ElemWidth = R.readU8();
    B.Elements = R.readI64();
    K.PrivateBuffers.push_back(B);
  }
  uint64_t SiteCount = R.readU64();
  for (uint64_t I = 0; I < SiteCount && R.ok(); ++I) {
    vm::AccessSite S;
    S.Space = static_cast<vm::MemSpace>(R.readU8());
    S.IsStore = R.readBool();
    S.Coalesced = R.readBool();
    K.AccessSites.push_back(S);
  }
  K.RegisterCount = static_cast<uint16_t>(R.readU32());
  K.BranchSites = R.readI32();
  K.HasBarrier = R.readBool();
  return K;
}

Status store::saveCorpus(const std::string &Path, const corpus::Corpus &C) {
  ArchiveWriter W(ArchiveKind::Corpus);
  C.serialize(W);
  return W.saveTo(Path);
}

Result<corpus::Corpus> store::loadCorpus(const std::string &Path) {
  auto Opened = ArchiveReader::open(Path, ArchiveKind::Corpus);
  if (!Opened.ok())
    return Result<corpus::Corpus>::error(Opened.errorMessage());
  ArchiveReader R = Opened.take();
  corpus::Corpus C = corpus::Corpus::deserialize(R);
  Status Final = R.finish();
  if (!Final.ok())
    return Result<corpus::Corpus>::error(Path + ": " + Final.errorMessage());
  return C;
}

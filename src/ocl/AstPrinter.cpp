//===- ocl/AstPrinter.cpp - Style-normalised source printer ------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/AstPrinter.h"

#include "ocl/Casting.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace clgen;
using namespace clgen::ocl;

namespace {

/// Precedence levels used to decide where parentheses are required when
/// printing nested expressions. Higher binds tighter.
int exprPrecedence(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
  case Expr::Kind::VarRef:
  case Expr::Kind::Call:
  case Expr::Kind::Index:
  case Expr::Kind::Member:
  case Expr::Kind::VectorLiteral:
    return 100;
  case Expr::Kind::Unary:
  case Expr::Kind::Cast:
    return 50;
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    if (isAssignmentOp(BE->Op))
      return 1;
    switch (BE->Op) {
    case BinaryOp::Mul: case BinaryOp::Div: case BinaryOp::Rem: return 20;
    case BinaryOp::Add: case BinaryOp::Sub: return 19;
    case BinaryOp::Shl: case BinaryOp::Shr: return 18;
    case BinaryOp::Lt: case BinaryOp::Gt:
    case BinaryOp::Le: case BinaryOp::Ge: return 17;
    case BinaryOp::Eq: case BinaryOp::Ne: return 16;
    case BinaryOp::BitAnd: return 15;
    case BinaryOp::BitXor: return 14;
    case BinaryOp::BitOr: return 13;
    case BinaryOp::LAnd: return 12;
    case BinaryOp::LOr: return 11;
    default: return 1;
    }
  }
  case Expr::Kind::Conditional:
    return 2;
  }
  return 0;
}

std::string formatFloatLiteral(double Value, bool IsDouble) {
  // Round-trip-safe formatting: pick the shortest precision that parses
  // back to the identical value, so rewriting never perturbs constants.
  std::string Text;
  for (int Precision : {6, 9, 17}) {
    Text = formatString("%.*g", Precision, Value);
    if (std::strtod(Text.c_str(), nullptr) == Value)
      break;
  }
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find("inf") == std::string::npos &&
      Text.find("nan") == std::string::npos)
    Text += ".0";
  if (!IsDouble)
    Text += "f";
  return Text;
}

class PrinterImpl {
public:
  std::string renderExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral: {
      const auto *IL = cast<IntLiteralExpr>(E);
      std::string Text = std::to_string(IL->Value);
      if (IL->IsUnsigned)
        Text += "u";
      return Text;
    }
    case Expr::Kind::FloatLiteral: {
      const auto *FL = cast<FloatLiteralExpr>(E);
      return formatFloatLiteral(FL->Value, FL->IsDoublePrecision);
    }
    case Expr::Kind::VarRef:
      return cast<VarRefExpr>(E)->Name;
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      int Prec = exprPrecedence(E);
      // Left operand: parenthesise if strictly weaker. Right operand:
      // parenthesise if weaker-or-equal (left associativity), except for
      // assignments which associate right.
      bool Assign = isAssignmentOp(BE->Op);
      std::string L = renderChild(BE->Lhs.get(), Assign ? Prec + 1 : Prec);
      std::string R = renderChild(BE->Rhs.get(), Assign ? Prec : Prec + 1);
      return L + " " + binaryOpSpelling(BE->Op) + " " + R;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      std::string Operand = renderChild(UE->Operand.get(), 50);
      if (UE->Op == UnaryOp::PostInc)
        return Operand + "++";
      if (UE->Op == UnaryOp::PostDec)
        return Operand + "--";
      return std::string(unaryOpSpelling(UE->Op)) + Operand;
    }
    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      std::vector<std::string> Args;
      Args.reserve(CE->Args.size());
      for (const auto &Arg : CE->Args)
        Args.push_back(renderExpr(Arg.get()));
      return CE->Callee + "(" + joinStrings(Args, ", ") + ")";
    }
    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      return renderChild(IE->Base.get(), 100) + "[" +
             renderExpr(IE->Index.get()) + "]";
    }
    case Expr::Kind::Member: {
      const auto *ME = cast<MemberExpr>(E);
      return renderChild(ME->Base.get(), 100) + "." + ME->Component;
    }
    case Expr::Kind::Cast: {
      const auto *CE = cast<CastExpr>(E);
      return "(" + typeName(CE->Target) + ")" +
             renderChild(CE->Operand.get(), 50);
    }
    case Expr::Kind::VectorLiteral: {
      const auto *VL = cast<VectorLiteralExpr>(E);
      std::vector<std::string> Elems;
      Elems.reserve(VL->Elements.size());
      for (const auto &Elem : VL->Elements)
        Elems.push_back(renderExpr(Elem.get()));
      return "(" + scalarTypeName(VL->Target.S, VL->Target.VecWidth) + ")(" +
             joinStrings(Elems, ", ") + ")";
    }
    case Expr::Kind::Conditional: {
      const auto *CE = cast<ConditionalExpr>(E);
      return renderChild(CE->Cond.get(), 3) + " ? " +
             renderExpr(CE->TrueExpr.get()) + " : " +
             renderExpr(CE->FalseExpr.get());
    }
    }
    return "<expr>";
  }

  std::string renderChild(const Expr *E, int ParentPrec) {
    std::string Text = renderExpr(E);
    if (exprPrecedence(E) < ParentPrec)
      return "(" + Text + ")";
    return Text;
  }

  void renderStmt(const Stmt *S, std::string &Out, int Indent) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (S->kind()) {
    case Stmt::Kind::Compound: {
      const auto *CS = cast<CompoundStmt>(S);
      for (const auto &Child : CS->Body)
        renderStmt(Child.get(), Out, Indent);
      return;
    }
    case Stmt::Kind::Decl: {
      const auto *DS = cast<DeclStmt>(S);
      Out += Pad + renderDecl(DS) + ";\n";
      return;
    }
    case Stmt::Kind::Expr:
      Out += Pad + renderExpr(cast<ExprStmt>(S)->E.get()) + ";\n";
      return;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      Out += Pad + "if (" + renderExpr(IS->Cond.get()) + ") {\n";
      renderStmt(IS->Then.get(), Out, Indent + 1);
      if (IS->Else) {
        Out += Pad + "} else {\n";
        renderStmt(IS->Else.get(), Out, Indent + 1);
      }
      Out += Pad + "}\n";
      return;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      std::string Init;
      if (FS->Init) {
        if (const auto *DS = dyn_cast<DeclStmt>(FS->Init.get()))
          Init = renderDecl(DS);
        else if (const auto *ES = dyn_cast<ExprStmt>(FS->Init.get()))
          Init = renderExpr(ES->E.get());
        else if (const auto *CS = dyn_cast<CompoundStmt>(FS->Init.get())) {
          // Multi-declarator init: type name = v, name2 = v2.
          std::vector<std::string> Parts;
          for (const auto &Child : CS->Body)
            if (const auto *D = dyn_cast<DeclStmt>(Child.get()))
              Parts.push_back(renderDecl(D));
          Init = joinStrings(Parts, ", ");
        }
      }
      std::string Cond = FS->Cond ? renderExpr(FS->Cond.get()) : "";
      std::string Step = FS->Step ? renderExpr(FS->Step.get()) : "";
      Out += Pad + "for (" + Init + "; " + Cond + "; " + Step + ") {\n";
      renderStmt(FS->Body.get(), Out, Indent + 1);
      Out += Pad + "}\n";
      return;
    }
    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(S);
      Out += Pad + "while (" + renderExpr(WS->Cond.get()) + ") {\n";
      renderStmt(WS->Body.get(), Out, Indent + 1);
      Out += Pad + "}\n";
      return;
    }
    case Stmt::Kind::Do: {
      const auto *DS = cast<DoStmt>(S);
      Out += Pad + "do {\n";
      renderStmt(DS->Body.get(), Out, Indent + 1);
      Out += Pad + "} while (" + renderExpr(DS->Cond.get()) + ");\n";
      return;
    }
    case Stmt::Kind::Return: {
      const auto *RS = cast<ReturnStmt>(S);
      if (RS->Value)
        Out += Pad + "return " + renderExpr(RS->Value.get()) + ";\n";
      else
        Out += Pad + "return;\n";
      return;
    }
    case Stmt::Kind::Break:
      Out += Pad + "break;\n";
      return;
    case Stmt::Kind::Continue:
      Out += Pad + "continue;\n";
      return;
    case Stmt::Kind::Empty:
      return;
    }
  }

  std::string renderDecl(const DeclStmt *DS) {
    QualType Ty = DS->Ty;
    std::string Text;
    // Address space comes first even for arrays ("__local float t[64]").
    if (DS->ArraySize > 0) {
      switch (Ty.AS) {
      case AddrSpace::Local: Text += "__local "; break;
      case AddrSpace::Constant: Text += "__constant "; break;
      default: break;
      }
      if (Ty.Const)
        Text += "const ";
      Text += scalarTypeName(Ty.S, Ty.VecWidth);
      Text += " " + DS->Name + "[" + std::to_string(DS->ArraySize) + "]";
    } else {
      Text += typeName(Ty);
      Text += Ty.Pointer ? " " : " ";
      Text += DS->Name;
    }
    if (DS->Init)
      Text += " = " + renderExpr(DS->Init.get());
    return Text;
  }

  std::string renderFunction(const FunctionDecl &F) {
    std::string Out;
    if (F.IsKernel)
      Out += "__kernel ";
    else if (F.IsInline)
      Out += "inline ";
    Out += typeName(F.ReturnTy) + " " + F.Name + "(";
    std::vector<std::string> Params;
    Params.reserve(F.Params.size());
    for (const ParamDecl &P : F.Params)
      Params.push_back(typeName(P.Ty) + " " + P.Name);
    Out += joinStrings(Params, ", ") + ") {\n";
    if (F.Body)
      renderStmt(F.Body.get(), Out, 1);
    Out += "}";
    return Out;
  }
};

} // namespace

std::string ocl::printExpr(const Expr &E) {
  PrinterImpl Impl;
  return Impl.renderExpr(&E);
}

std::string ocl::printFunction(const FunctionDecl &F) {
  PrinterImpl Impl;
  return Impl.renderFunction(F);
}

std::string ocl::printProgram(const Program &P) {
  PrinterImpl Impl;
  std::string Out;
  for (const auto &GC : P.Constants) {
    Out += typeName(GC.Ty) + " " + GC.Name;
    if (GC.Init)
      Out += " = " + Impl.renderExpr(GC.Init.get());
    Out += ";\n\n";
  }
  for (size_t I = 0; I < P.Functions.size(); ++I) {
    Out += Impl.renderFunction(*P.Functions[I]);
    Out += "\n";
    if (I + 1 < P.Functions.size())
      Out += "\n";
  }
  return Out;
}

//===- predict/Evaluation.h - Model training & evaluation --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experimental harness of section 7.2: observations are (kernel,
/// dataset) pairs with measured CPU/GPU runtimes; models are evaluated
/// with leave-one-benchmark-out cross-validation (train on all other
/// benchmarks, predict every kernel+dataset of the excluded one);
/// synthetic benchmarks can be added to the training side of every fold
/// but are never tested on.
///
/// Metrics:
///  - performance relative to oracle (Table 1): geometric-mean ratio of
///    oracle runtime to predicted-mapping runtime (1.0 = always optimal);
///  - speedup over a static single-device baseline (Figures 7/8).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_PREDICT_EVALUATION_H
#define CLGEN_PREDICT_EVALUATION_H

#include "features/Features.h"
#include "predict/DecisionTree.h"

#include <string>
#include <vector>

namespace clgen {
namespace predict {

/// One benchmarking observation: a kernel + dataset with both runtimes.
struct Observation {
  std::string Suite;
  std::string Benchmark; // e.g. "FT"; cross-validation group key.
  std::string Kernel;    // Kernel function name.
  std::string Dataset;   // e.g. "A" for NPB class A.
  features::RawFeatures Raw;
  double CpuTime = 0.0;
  double GpuTime = 0.0;

  int label() const { return GpuTime < CpuTime ? 1 : 0; } // 1 = GPU.
  double oracleTime() const { return GpuTime < CpuTime ? GpuTime : CpuTime; }
  double timeFor(int Label) const { return Label == 1 ? GpuTime : CpuTime; }
  std::string qualifiedName() const {
    return Dataset.empty() ? Benchmark : Benchmark + "." + Dataset;
  }
};

enum class FeatureSetKind {
  Grewe,    // F1..F4 (the CGO'13 model).
  Extended, // F1..F4 + raw + branch (section 8.2).
};

/// Materialises the feature vector for \p O under the chosen layout.
std::vector<double> featureVector(const Observation &O, FeatureSetKind Kind);

/// Row-major feature matrix over \p Obs, fanned out across a thread
/// pool with an order-preserving merge: row i equals
/// featureVector(Obs[i], Kind) exactly for any \p Workers value
/// (0 = hardware concurrency; scheduling-only by contract).
std::vector<std::vector<double>>
featureMatrix(const std::vector<Observation> &Obs, FeatureSetKind Kind,
              unsigned Workers = 1);

/// Trains a decision tree on \p Train and returns per-observation
/// predicted labels for \p Test.
std::vector<int> trainAndPredict(const std::vector<Observation> &Train,
                                 const std::vector<Observation> &Test,
                                 FeatureSetKind Kind,
                                 TreeOptions Opts = TreeOptions());

/// The label (0 = CPU, 1 = GPU) minimising total runtime across \p Obs:
/// the "best single-device mapping" baseline of section 8.1.
int staticBestDevice(const std::vector<Observation> &Obs);

/// Geometric mean over observations of oracle/predicted runtime.
double performanceRelativeToOracle(const std::vector<Observation> &Obs,
                                   const std::vector<int> &Predictions);

/// Geometric mean over observations of static-baseline/predicted runtime.
double speedupOverStatic(const std::vector<Observation> &Obs,
                         const std::vector<int> &Predictions,
                         int StaticLabel);

/// Per-observation speedup of predicted mapping over the static baseline.
std::vector<double> perObservationSpeedup(const std::vector<Observation> &Obs,
                                          const std::vector<int> &Predictions,
                                          int StaticLabel);

/// Classification accuracy.
double accuracy(const std::vector<Observation> &Obs,
                const std::vector<int> &Predictions);

/// Result of a leave-one-benchmark-out run: predictions aligned with the
/// input observation order.
struct CrossValidationResult {
  std::vector<int> Predictions;
};

/// Leave-one-benchmark-out cross-validation over \p Obs. For each
/// distinct Benchmark, trains on all observations of other benchmarks
/// plus \p ExtraTraining (e.g. synthetic benchmarks), then predicts the
/// held-out benchmark's observations.
CrossValidationResult
leaveOneBenchmarkOut(const std::vector<Observation> &Obs,
                     const std::vector<Observation> &ExtraTraining,
                     FeatureSetKind Kind, TreeOptions Opts = TreeOptions());

/// Configuration of deterministic grouped K-fold cross-validation.
struct KFoldOptions {
  /// Number of folds (clamped to the number of benchmark groups).
  size_t Folds = 5;
  /// Seed of the fold assignment. Semantic: changes which benchmarks
  /// land in which fold, and therefore every prediction.
  uint64_t Seed = 0x5EEDF01D;
  /// Fold-training threads (0 = hardware concurrency). Scheduling-only:
  /// predictions are bit-identical for every value, because the fold
  /// assignment is counter-keyed (below) and each fold writes disjoint
  /// prediction slots.
  unsigned Workers = 1;
};

/// Result of a K-fold run, index-aligned with the input observations.
struct KFoldResult {
  std::vector<int> Predictions;
  /// Fold each observation was held out in.
  std::vector<int> FoldOf;
  /// Folds that actually trained a tree (folds assigned no benchmark
  /// group are skipped).
  size_t FoldsTrained = 0;
};

/// Deterministic grouped K-fold cross-validation: whole benchmarks
/// (Suite/Benchmark groups) are assigned to folds so a kernel is never
/// predicted by a model that saw its sibling datasets.
///
/// Fold-split determinism contract: group keys are sorted, and group g
/// (in sorted order) lands in fold Rng(Seed).split(g).bounded(Folds) —
/// a pure function of (Seed, g, Folds) via the counter-keyed RNG split,
/// so the assignment is independent of worker count, scheduling and
/// observation arrival order within a group. Folds then train in
/// parallel, each writing only its own observations' prediction slots;
/// the merged result is bit-identical for any KFoldOptions::Workers.
/// \p ExtraTraining joins every fold's training side, never a test set.
KFoldResult kFoldCrossValidation(const std::vector<Observation> &Obs,
                                 const std::vector<Observation> &ExtraTraining,
                                 FeatureSetKind Kind,
                                 const KFoldOptions &KOpts = KFoldOptions(),
                                 TreeOptions Opts = TreeOptions());

} // namespace predict
} // namespace clgen

#endif // CLGEN_PREDICT_EVALUATION_H

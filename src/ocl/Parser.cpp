//===- ocl/Parser.cpp - OpenCL C recursive-descent parser -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Parser.h"

#include "ocl/Casting.h"
#include "ocl/Lexer.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <unordered_map>

using namespace clgen;
using namespace clgen::ocl;

namespace {

/// The parser proper. Fail-fast: `Failed` latches on the first error and
/// every production bails out quickly afterwards.
class Parser {
public:
  explicit Parser(const std::string &Source) : Tokens(lex(Source)) {}

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  bool Failed = false;
  std::string Diagnostic;
  std::unordered_map<std::string, QualType> Typedefs;

  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &current() const { return peek(0); }
  bool atEnd() const { return current().is(TokenKind::Eof); }

  Token consume() {
    Token T = current();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool tryConsume(TokenKind K) {
    if (!current().is(K))
      return false;
    consume();
    return true;
  }

  bool tryConsumeKeyword(const char *KW) {
    if (!current().isKeyword(KW))
      return false;
    consume();
    return true;
  }

  /// Records an error at the current token. Returns false for convenience.
  bool error(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Diagnostic = formatString("line %d: %s (got %s '%s')", current().Line,
                                Message.c_str(),
                                tokenKindName(current().Kind).c_str(),
                                current().Text.c_str());
    }
    return false;
  }

  bool expect(TokenKind K, const char *Context) {
    if (tryConsume(K))
      return true;
    return error(formatString("expected %s in %s", tokenKindName(K).c_str(),
                              Context));
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  /// Returns true when the token at \p Ahead could start a type
  /// (qualifier keyword, builtin type name or typedef name).
  bool isTypeStart(size_t Ahead = 0) const {
    const Token &T = peek(Ahead);
    if (T.is(TokenKind::Keyword)) {
      static const char *TypeKeywords[] = {
          "const",    "volatile",   "restrict",  "unsigned", "signed",
          "__global", "global",     "__local",   "local",    "__constant",
          "constant", "__private",  "private",   "__read_only",
          "read_only", "__write_only", "write_only", "struct",
      };
      for (const char *KW : TypeKeywords)
        if (T.Text == KW)
          return true;
      return false;
    }
    if (!T.is(TokenKind::Identifier))
      return false;
    if (builtinTypeByName(T.Text))
      return true;
    return Typedefs.count(T.Text) != 0;
  }

  /// Parses qualifiers + type name [+ '*']. Returns Void type on error.
  QualType parseType() {
    QualType Ty;
    bool SawUnsigned = false, SawSigned = false, SawBase = false;

    for (;;) {
      const Token &T = current();
      if (T.isKeyword("const")) {
        Ty.Const = true;
        consume();
        continue;
      }
      if (T.isKeyword("volatile") || T.isKeyword("restrict") ||
          T.isKeyword("__read_only") || T.isKeyword("read_only") ||
          T.isKeyword("__write_only") || T.isKeyword("write_only")) {
        consume(); // Accepted and ignored.
        continue;
      }
      if (T.isKeyword("__global") || T.isKeyword("global")) {
        Ty.AS = AddrSpace::Global;
        consume();
        continue;
      }
      if (T.isKeyword("__local") || T.isKeyword("local")) {
        Ty.AS = AddrSpace::Local;
        consume();
        continue;
      }
      if (T.isKeyword("__constant") || T.isKeyword("constant")) {
        Ty.AS = AddrSpace::Constant;
        consume();
        continue;
      }
      if (T.isKeyword("__private") || T.isKeyword("private")) {
        Ty.AS = AddrSpace::Private;
        consume();
        continue;
      }
      if (T.isKeyword("unsigned")) {
        SawUnsigned = true;
        consume();
        continue;
      }
      if (T.isKeyword("signed")) {
        SawSigned = true;
        consume();
        continue;
      }
      if (T.isKeyword("struct") || T.isKeyword("union") ||
          T.isKeyword("enum")) {
        error("user-defined aggregate types are not supported");
        return QualType();
      }
      break;
    }

    // Base type name.
    if (current().is(TokenKind::Identifier)) {
      if (auto Builtin = builtinTypeByName(current().Text)) {
        QualType Base = *Builtin;
        Ty.S = Base.S;
        Ty.VecWidth = Base.VecWidth;
        SawBase = true;
        consume();
      } else {
        auto It = Typedefs.find(current().Text);
        if (It != Typedefs.end()) {
          QualType Alias = It->second;
          Ty.S = Alias.S;
          Ty.VecWidth = Alias.VecWidth;
          if (Alias.Pointer)
            Ty.Pointer = true;
          if (Alias.Const)
            Ty.Const = true;
          SawBase = true;
          consume();
        }
      }
    }

    if (!SawBase) {
      if (SawUnsigned || SawSigned) {
        // Bare "unsigned" / "signed" means int.
        Ty.S = Scalar::Int;
      } else {
        error("expected type name");
        return QualType();
      }
    }

    if (SawUnsigned)
      Ty.S = toUnsigned(Ty.S);
    if (SawSigned)
      Ty.S = toSigned(Ty.S);

    // Pointer declarator(s). Multi-level pointers are unsupported.
    if (tryConsume(TokenKind::Star)) {
      Ty.Pointer = true;
      // Trailing qualifiers after '*', e.g. "float * restrict".
      while (tryConsumeKeyword("restrict") || tryConsumeKeyword("const") ||
             tryConsumeKeyword("volatile")) {
      }
      if (current().is(TokenKind::Star)) {
        error("multi-level pointers are not supported");
        return QualType();
      }
    }
    return Ty;
  }

  static Scalar toUnsigned(Scalar S) {
    switch (S) {
    case Scalar::Char: return Scalar::UChar;
    case Scalar::Short: return Scalar::UShort;
    case Scalar::Int: return Scalar::UInt;
    case Scalar::Long: return Scalar::ULong;
    default: return S;
    }
  }
  static Scalar toSigned(Scalar S) {
    switch (S) {
    case Scalar::UChar: return Scalar::Char;
    case Scalar::UShort: return Scalar::Short;
    case Scalar::UInt: return Scalar::Int;
    case Scalar::ULong: return Scalar::Long;
    default: return S;
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  /// Binding power of the binary operator at the cursor; 0 when the
  /// current token is not a binary operator.
  static int binaryPrecedence(TokenKind K) {
    switch (K) {
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater: return 8;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEqual:
    case TokenKind::GreaterEqual: return 7;
    case TokenKind::EqualEqual:
    case TokenKind::ExclaimEqual: return 6;
    case TokenKind::Amp: return 5;
    case TokenKind::Caret: return 4;
    case TokenKind::Pipe: return 3;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::PipePipe: return 1;
    default: return 0;
    }
  }

  static BinaryOp binaryOpFor(TokenKind K) {
    switch (K) {
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Rem;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::LessLess: return BinaryOp::Shl;
    case TokenKind::GreaterGreater: return BinaryOp::Shr;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::LessEqual: return BinaryOp::Le;
    case TokenKind::GreaterEqual: return BinaryOp::Ge;
    case TokenKind::EqualEqual: return BinaryOp::Eq;
    case TokenKind::ExclaimEqual: return BinaryOp::Ne;
    case TokenKind::Amp: return BinaryOp::BitAnd;
    case TokenKind::Caret: return BinaryOp::BitXor;
    case TokenKind::Pipe: return BinaryOp::BitOr;
    case TokenKind::AmpAmp: return BinaryOp::LAnd;
    case TokenKind::PipePipe: return BinaryOp::LOr;
    default: assert(false && "not a binary operator"); return BinaryOp::Add;
    }
  }

  /// Maps an assignment token to its BinaryOp, or nullopt.
  static std::optional<BinaryOp> assignOpFor(TokenKind K) {
    switch (K) {
    case TokenKind::Equal: return BinaryOp::Assign;
    case TokenKind::PlusEqual: return BinaryOp::AddAssign;
    case TokenKind::MinusEqual: return BinaryOp::SubAssign;
    case TokenKind::StarEqual: return BinaryOp::MulAssign;
    case TokenKind::SlashEqual: return BinaryOp::DivAssign;
    case TokenKind::PercentEqual: return BinaryOp::RemAssign;
    case TokenKind::LessLessEqual: return BinaryOp::ShlAssign;
    case TokenKind::GreaterGreaterEqual: return BinaryOp::ShrAssign;
    case TokenKind::AmpEqual: return BinaryOp::AndAssign;
    case TokenKind::PipeEqual: return BinaryOp::OrAssign;
    case TokenKind::CaretEqual: return BinaryOp::XorAssign;
    default: return std::nullopt;
    }
  }

  /// expression := assignment
  ExprPtr parseExpr() { return parseAssignment(); }

  /// assignment := conditional (ASSIGNOP assignment)?
  ExprPtr parseAssignment() {
    ExprPtr Lhs = parseConditional();
    if (!Lhs)
      return nullptr;
    auto Op = assignOpFor(current().Kind);
    if (!Op)
      return Lhs;
    int Line = current().Line;
    consume();
    ExprPtr Rhs = parseAssignment();
    if (!Rhs)
      return nullptr;
    return std::make_unique<BinaryExpr>(*Op, std::move(Lhs), std::move(Rhs),
                                        Line);
  }

  /// conditional := binary ('?' expression ':' assignment)?
  ExprPtr parseConditional() {
    ExprPtr Cond = parseBinary(1);
    if (!Cond)
      return nullptr;
    if (!current().is(TokenKind::Question))
      return Cond;
    int Line = consume().Line;
    ExprPtr TrueE = parseExpr();
    if (!TrueE)
      return nullptr;
    if (!expect(TokenKind::Colon, "conditional expression"))
      return nullptr;
    ExprPtr FalseE = parseAssignment();
    if (!FalseE)
      return nullptr;
    return std::make_unique<ConditionalExpr>(std::move(Cond), std::move(TrueE),
                                             std::move(FalseE), Line);
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr Lhs = parseUnary();
    if (!Lhs)
      return nullptr;
    for (;;) {
      int Prec = binaryPrecedence(current().Kind);
      if (Prec < MinPrec || Prec == 0)
        return Lhs;
      TokenKind OpTok = current().Kind;
      int Line = consume().Line;
      ExprPtr Rhs = parseBinary(Prec + 1);
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(binaryOpFor(OpTok), std::move(Lhs),
                                         std::move(Rhs), Line);
    }
  }

  ExprPtr parseUnary() {
    int Line = current().Line;
    switch (current().Kind) {
    case TokenKind::Plus:
      consume();
      return wrapUnary(UnaryOp::Plus, Line);
    case TokenKind::Minus:
      consume();
      return wrapUnary(UnaryOp::Neg, Line);
    case TokenKind::Tilde:
      consume();
      return wrapUnary(UnaryOp::BitNot, Line);
    case TokenKind::Exclaim:
      consume();
      return wrapUnary(UnaryOp::LNot, Line);
    case TokenKind::PlusPlus:
      consume();
      return wrapUnary(UnaryOp::PreInc, Line);
    case TokenKind::MinusMinus:
      consume();
      return wrapUnary(UnaryOp::PreDec, Line);
    case TokenKind::Star:
      consume();
      return wrapUnary(UnaryOp::Deref, Line);
    case TokenKind::Amp:
      consume();
      return wrapUnary(UnaryOp::AddrOf, Line);
    case TokenKind::LParen:
      // Cast or parenthesised expression.
      if (isTypeStart(1))
        return parseCastOrVectorLiteral();
      break;
    default:
      break;
    }
    return parsePostfix();
  }

  ExprPtr wrapUnary(UnaryOp Op, int Line) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Op, std::move(Operand), Line);
  }

  /// '(' type ')' followed by either a unary expression (scalar cast) or a
  /// parenthesised element list (vector literal).
  ExprPtr parseCastOrVectorLiteral() {
    int Line = current().Line;
    expect(TokenKind::LParen, "cast");
    QualType Target = parseType();
    if (Failed)
      return nullptr;
    if (!expect(TokenKind::RParen, "cast"))
      return nullptr;

    if (Target.isVector() && current().is(TokenKind::LParen)) {
      // Vector literal: (float4)(a, b, c, d) or broadcast (float4)(0.0f).
      consume();
      std::vector<ExprPtr> Elements;
      if (!current().is(TokenKind::RParen)) {
        do {
          ExprPtr E = parseExpr();
          if (!E)
            return nullptr;
          Elements.push_back(std::move(E));
        } while (tryConsume(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "vector literal"))
        return nullptr;
      if (Elements.empty()) {
        error("vector literal requires at least one element");
        return nullptr;
      }
      return std::make_unique<VectorLiteralExpr>(Target, std::move(Elements),
                                                 Line);
    }

    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<CastExpr>(Target, std::move(Operand), Line);
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      int Line = current().Line;
      if (tryConsume(TokenKind::LBracket)) {
        ExprPtr Index = parseExpr();
        if (!Index)
          return nullptr;
        if (!expect(TokenKind::RBracket, "array subscript"))
          return nullptr;
        E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Line);
        continue;
      }
      if (tryConsume(TokenKind::Dot)) {
        if (!current().is(TokenKind::Identifier)) {
          error("expected member name after '.'");
          return nullptr;
        }
        std::string Component = consume().Text;
        E = std::make_unique<MemberExpr>(std::move(E), std::move(Component),
                                         Line);
        continue;
      }
      if (current().is(TokenKind::Arrow)) {
        error("'->' member access is not supported");
        return nullptr;
      }
      if (tryConsume(TokenKind::PlusPlus)) {
        E = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(E), Line);
        continue;
      }
      if (tryConsume(TokenKind::MinusMinus)) {
        E = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(E), Line);
        continue;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    const Token &T = current();
    int Line = T.Line;

    if (T.is(TokenKind::IntLiteral)) {
      std::string Text = consume().Text;
      bool IsUnsigned = Text.find('u') != std::string::npos ||
                        Text.find('U') != std::string::npos;
      int64_t Value =
          static_cast<int64_t>(std::strtoull(Text.c_str(), nullptr, 0));
      return std::make_unique<IntLiteralExpr>(Value, IsUnsigned, Line);
    }

    if (T.is(TokenKind::FloatLiteral)) {
      std::string Text = consume().Text;
      bool IsDouble = Text.find('f') == std::string::npos &&
                      Text.find('F') == std::string::npos;
      double Value = std::strtod(Text.c_str(), nullptr);
      return std::make_unique<FloatLiteralExpr>(Value, IsDouble, Line);
    }

    if (T.isKeyword("sizeof")) {
      consume();
      if (!expect(TokenKind::LParen, "sizeof"))
        return nullptr;
      QualType Ty = parseType();
      if (Failed)
        return nullptr;
      if (!expect(TokenKind::RParen, "sizeof"))
        return nullptr;
      return std::make_unique<IntLiteralExpr>(
          static_cast<int64_t>(Ty.elementSizeBytes()), true, Line);
    }

    if (T.is(TokenKind::Identifier)) {
      std::string Name = consume().Text;
      if (tryConsume(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!current().is(TokenKind::RParen)) {
          do {
            ExprPtr Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Args.push_back(std::move(Arg));
          } while (tryConsume(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen, "call"))
          return nullptr;
        return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                          Line);
      }
      return std::make_unique<VarRefExpr>(std::move(Name), Line);
    }

    if (tryConsume(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(TokenKind::RParen, "parenthesised expression"))
        return nullptr;
      return E;
    }

    if (T.is(TokenKind::StringLiteral)) {
      error("string literals are not supported in kernels");
      return nullptr;
    }

    error("expected expression");
    return nullptr;
  }

  /// Evaluates an integer constant expression (for array sizes). Supports
  /// literals and + - * / % << >> on them.
  std::optional<int64_t> evalConstInt(const Expr *E) {
    if (const auto *IL = dyn_cast<IntLiteralExpr>(E))
      return IL->Value;
    if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
      auto V = evalConstInt(UE->Operand.get());
      if (!V)
        return std::nullopt;
      switch (UE->Op) {
      case UnaryOp::Neg: return -*V;
      case UnaryOp::Plus: return *V;
      case UnaryOp::BitNot: return ~*V;
      default: return std::nullopt;
      }
    }
    if (const auto *BE = dyn_cast<BinaryExpr>(E)) {
      auto L = evalConstInt(BE->Lhs.get());
      auto R = evalConstInt(BE->Rhs.get());
      if (!L || !R)
        return std::nullopt;
      switch (BE->Op) {
      case BinaryOp::Add: return *L + *R;
      case BinaryOp::Sub: return *L - *R;
      case BinaryOp::Mul: return *L * *R;
      case BinaryOp::Div: return *R == 0 ? std::optional<int64_t>() : *L / *R;
      case BinaryOp::Rem: return *R == 0 ? std::optional<int64_t>() : *L % *R;
      case BinaryOp::Shl: return *L << (*R & 63);
      case BinaryOp::Shr: return *L >> (*R & 63);
      default: return std::nullopt;
      }
    }
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  StmtPtr parseStmt() {
    const Token &T = current();
    int Line = T.Line;

    if (T.is(TokenKind::LBrace))
      return parseCompound();
    if (T.isKeyword("if"))
      return parseIf();
    if (T.isKeyword("for"))
      return parseFor();
    if (T.isKeyword("while"))
      return parseWhile();
    if (T.isKeyword("do"))
      return parseDo();
    if (T.isKeyword("return")) {
      consume();
      ExprPtr Value;
      if (!current().is(TokenKind::Semi)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokenKind::Semi, "return statement"))
        return nullptr;
      return std::make_unique<ReturnStmt>(std::move(Value), Line);
    }
    if (T.isKeyword("break")) {
      consume();
      if (!expect(TokenKind::Semi, "break statement"))
        return nullptr;
      return std::make_unique<BreakStmt>(Line);
    }
    if (T.isKeyword("continue")) {
      consume();
      if (!expect(TokenKind::Semi, "continue statement"))
        return nullptr;
      return std::make_unique<ContinueStmt>(Line);
    }
    if (T.isKeyword("switch") || T.isKeyword("goto") || T.isKeyword("case") ||
        T.isKeyword("default")) {
      error("'" + T.Text + "' statements are not supported");
      return nullptr;
    }
    if (T.is(TokenKind::Semi)) {
      consume();
      return std::make_unique<EmptyStmt>(Line);
    }
    if (isDeclStart())
      return parseDeclGroup();

    // Expression statement.
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::Semi, "expression statement"))
      return nullptr;
    return std::make_unique<ExprStmt>(std::move(E), Line);
  }

  /// A declaration begins with a type unless the type name is immediately
  /// used as something else (e.g. a cast already handled by expression
  /// context).
  bool isDeclStart() const { return isTypeStart(); }

  /// Parses `type name [= init] (, name [= init])* ;` into a CompoundStmt
  /// when more than one declarator is present, or a single DeclStmt.
  StmtPtr parseDeclGroup() {
    int Line = current().Line;
    QualType BaseTy = parseType();
    if (Failed)
      return nullptr;

    std::vector<StmtPtr> Decls;
    do {
      StmtPtr D = parseSingleDeclarator(BaseTy);
      if (!D)
        return nullptr;
      Decls.push_back(std::move(D));
    } while (tryConsume(TokenKind::Comma));

    if (!expect(TokenKind::Semi, "declaration"))
      return nullptr;

    if (Decls.size() == 1)
      return std::move(Decls.front());
    auto Block = std::make_unique<CompoundStmt>(Line);
    Block->Body = std::move(Decls);
    return Block;
  }

  StmtPtr parseSingleDeclarator(QualType BaseTy) {
    // Additional '*' may bind to the declarator: `float *p`.
    QualType Ty = BaseTy;
    if (tryConsume(TokenKind::Star)) {
      if (Ty.Pointer) {
        error("multi-level pointers are not supported");
        return nullptr;
      }
      Ty.Pointer = true;
      while (tryConsumeKeyword("restrict") || tryConsumeKeyword("const")) {
      }
    }
    if (!current().is(TokenKind::Identifier)) {
      error("expected variable name in declaration");
      return nullptr;
    }
    int Line = current().Line;
    std::string Name = consume().Text;

    int64_t ArraySize = 0;
    if (tryConsume(TokenKind::LBracket)) {
      ExprPtr SizeExpr = parseExpr();
      if (!SizeExpr)
        return nullptr;
      auto Size = evalConstInt(SizeExpr.get());
      if (!Size || *Size <= 0) {
        error("array size must be a positive integer constant");
        return nullptr;
      }
      ArraySize = *Size;
      if (!expect(TokenKind::RBracket, "array declaration"))
        return nullptr;
    }

    ExprPtr Init;
    if (tryConsume(TokenKind::Equal)) {
      if (current().is(TokenKind::LBrace)) {
        error("array initialiser lists are not supported");
        return nullptr;
      }
      Init = parseAssignment();
      if (!Init)
        return nullptr;
    }

    auto D = std::make_unique<DeclStmt>(Ty, std::move(Name), std::move(Init),
                                        Line);
    D->ArraySize = ArraySize;
    return D;
  }

  StmtPtr parseCompound() {
    int Line = current().Line;
    if (!expect(TokenKind::LBrace, "block"))
      return nullptr;
    auto Block = std::make_unique<CompoundStmt>(Line);
    while (!current().is(TokenKind::RBrace)) {
      if (atEnd()) {
        error("unterminated block");
        return nullptr;
      }
      StmtPtr S = parseStmt();
      if (!S)
        return nullptr;
      Block->Body.push_back(std::move(S));
    }
    consume(); // '}'
    return Block;
  }

  StmtPtr parseIf() {
    int Line = consume().Line; // 'if'
    if (!expect(TokenKind::LParen, "if condition"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "if condition"))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (tryConsumeKeyword("else")) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Line);
  }

  StmtPtr parseFor() {
    int Line = consume().Line; // 'for'
    if (!expect(TokenKind::LParen, "for statement"))
      return nullptr;

    StmtPtr Init;
    if (!tryConsume(TokenKind::Semi)) {
      if (isDeclStart()) {
        QualType BaseTy = parseType();
        if (Failed)
          return nullptr;
        std::vector<StmtPtr> Decls;
        do {
          StmtPtr D = parseSingleDeclarator(BaseTy);
          if (!D)
            return nullptr;
          Decls.push_back(std::move(D));
        } while (tryConsume(TokenKind::Comma));
        if (Decls.size() == 1) {
          Init = std::move(Decls.front());
        } else {
          auto Block = std::make_unique<CompoundStmt>(Line);
          Block->Body = std::move(Decls);
          Init = std::move(Block);
        }
      } else {
        ExprPtr E = parseExpr();
        if (!E)
          return nullptr;
        Init = std::make_unique<ExprStmt>(std::move(E), Line);
      }
      if (!expect(TokenKind::Semi, "for initialiser"))
        return nullptr;
    }

    ExprPtr Cond;
    if (!current().is(TokenKind::Semi)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "for condition"))
      return nullptr;

    ExprPtr Step;
    if (!current().is(TokenKind::RParen)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
      // Comma-separated step expressions: keep the left-most, require the
      // rest to parse (common pattern `i++, j++`).
      while (tryConsume(TokenKind::Comma)) {
        ExprPtr Extra = parseExpr();
        if (!Extra)
          return nullptr;
        int StepLine = Step->line();
        // Chain the extra step after the first via a synthetic comma
        // expression encoded as (a, b) -> evaluate both: we model it with
        // a BinaryExpr of kind Assign-free; simplest faithful encoding is
        // to wrap both in a conditional that always evaluates both sides.
        // Instead, keep semantics by combining into a vector-free
        // two-statement body is not possible here, so reject.
        (void)Extra;
        (void)StepLine;
        error("comma operator in for-step is not supported");
        return nullptr;
      }
    }
    if (!expect(TokenKind::RParen, "for statement"))
      return nullptr;

    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body), Line);
  }

  StmtPtr parseWhile() {
    int Line = consume().Line; // 'while'
    if (!expect(TokenKind::LParen, "while condition"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "while condition"))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Line);
  }

  StmtPtr parseDo() {
    int Line = consume().Line; // 'do'
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    if (!tryConsumeKeyword("while")) {
      error("expected 'while' after do-body");
      return nullptr;
    }
    if (!expect(TokenKind::LParen, "do-while condition"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "do-while condition"))
      return nullptr;
    if (!expect(TokenKind::Semi, "do-while statement"))
      return nullptr;
    return std::make_unique<DoStmt>(std::move(Body), std::move(Cond), Line);
  }

  //===--------------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------------===//

  /// Skips __attribute__((...)) with balanced parentheses.
  bool skipAttribute() {
    if (!tryConsumeKeyword("__attribute__"))
      return true;
    if (!expect(TokenKind::LParen, "__attribute__"))
      return false;
    int Depth = 1;
    while (Depth > 0) {
      if (atEnd())
        return error("unterminated __attribute__");
      if (tryConsume(TokenKind::LParen)) {
        ++Depth;
        continue;
      }
      if (tryConsume(TokenKind::RParen)) {
        --Depth;
        continue;
      }
      consume();
    }
    return true;
  }

  bool parseTypedef() {
    consume(); // 'typedef'
    QualType Ty = parseType();
    if (Failed)
      return false;
    if (!current().is(TokenKind::Identifier))
      return error("expected typedef name");
    std::string Name = consume().Text;
    if (!expect(TokenKind::Semi, "typedef"))
      return false;
    Typedefs[Name] = Ty;
    return true;
  }

  bool parseTopLevel(Program &P) {
    if (current().isKeyword("typedef"))
      return parseTypedef();

    bool IsKernel = false, IsInline = false;
    for (;;) {
      if (tryConsumeKeyword("__kernel") || tryConsumeKeyword("kernel")) {
        IsKernel = true;
        if (!skipAttribute())
          return false;
        continue;
      }
      if (tryConsumeKeyword("inline") || tryConsumeKeyword("static")) {
        IsInline = true;
        continue;
      }
      if (current().isKeyword("__attribute__")) {
        if (!skipAttribute())
          return false;
        continue;
      }
      break;
    }

    QualType Ty = parseType();
    if (Failed)
      return false;

    if (!current().is(TokenKind::Identifier))
      return error("expected function or variable name");
    int Line = current().Line;
    std::string Name = consume().Text;

    if (current().is(TokenKind::LParen)) {
      // Function definition or prototype.
      consume();
      auto F = std::make_unique<FunctionDecl>();
      F->ReturnTy = Ty;
      F->Name = std::move(Name);
      F->IsKernel = IsKernel;
      F->IsInline = IsInline;
      F->Line = Line;

      if (!current().is(TokenKind::RParen)) {
        if (current().isKeyword("void") ||
            (current().is(TokenKind::Identifier) && current().Text == "void" &&
             peek(1).is(TokenKind::RParen))) {
          consume();
        } else {
          do {
            QualType ParamTy = parseType();
            if (Failed)
              return false;
            std::string ParamName;
            if (current().is(TokenKind::Identifier))
              ParamName = consume().Text;
            // Array-style param: T name[] means pointer.
            if (tryConsume(TokenKind::LBracket)) {
              if (!current().is(TokenKind::RBracket)) {
                ExprPtr SizeExpr = parseExpr();
                if (!SizeExpr)
                  return false;
              }
              if (!expect(TokenKind::RBracket, "parameter"))
                return false;
              ParamTy.Pointer = true;
            }
            F->Params.push_back({ParamTy, std::move(ParamName)});
          } while (tryConsume(TokenKind::Comma));
        }
      }
      if (!expect(TokenKind::RParen, "parameter list"))
        return false;

      if (tryConsume(TokenKind::Semi))
        return true; // Prototype only; body may follow in another decl.

      StmtPtr Body = parseCompound();
      if (!Body)
        return false;
      F->Body.reset(cast<CompoundStmt>(Body.release()));
      P.Functions.push_back(std::move(F));
      return true;
    }

    // File-scope variable; only __constant scalars with initialisers are
    // accepted.
    if (Ty.AS != AddrSpace::Constant)
      return error("file-scope variables must be __constant");
    Program::GlobalConst GC;
    GC.Ty = Ty;
    GC.Name = std::move(Name);
    if (tryConsume(TokenKind::Equal)) {
      GC.Init = parseAssignment();
      if (!GC.Init)
        return false;
    }
    if (!expect(TokenKind::Semi, "constant declaration"))
      return false;
    P.Constants.push_back(std::move(GC));
    return true;
  }

public:
  friend Result<std::unique_ptr<Program>>
  clgen::ocl::parseProgram(const std::string &Source);
};

} // namespace

Result<std::unique_ptr<Program>>
ocl::parseProgram(const std::string &Source) {
  Parser P(Source);
  auto Prog = std::make_unique<Program>();
  while (!P.atEnd()) {
    if (!P.parseTopLevel(*Prog)) {
      assert(P.Failed && "top-level parse failed without diagnostic");
      return Result<std::unique_ptr<Program>>::error(P.Diagnostic);
    }
  }
  if (P.Failed)
    return Result<std::unique_ptr<Program>>::error(P.Diagnostic);
  return Prog;
}

//===- clgen/Sampler.h - Model sampling (Algorithm 1) ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative model sampling per Algorithm 1 of the paper: seed the
/// language model with the start of a kernel, then generate character by
/// character, tracking brace depth, until the function block closes (or
/// a length cap fires). Two modes are supported (section 4.3): with an
/// argument specification, the seed text pins the kernel signature; in
/// free mode the model invents the signature, with the argument
/// distribution of the corpus.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CLGEN_SAMPLER_H
#define CLGEN_CLGEN_SAMPLER_H

#include "model/LanguageModel.h"
#include "support/Rng.h"

#include <optional>
#include <string>
#include <vector>

namespace clgen {
namespace core {

/// A kernel argument specification ("three single-precision floating
/// point arrays and a read-only signed integer" in Figure 6).
struct ArgSpec {
  /// Type spellings in order, e.g. {"__global float*", "const int"}.
  std::vector<std::string> ArgTypes;

  /// The Figure 6 specification.
  static ArgSpec figure6();

  /// Renders the seed text "__kernel void A(<args>) {" with parameters
  /// named a, b, c, ... per the rewriter's series.
  std::string seedText() const;
};

/// Free-mode seed: "__kernel void A(" — the model completes the
/// signature itself.
std::string freeModeSeed();

struct SampleOptions {
  /// Hard cap on generated characters (Algorithm 1's n).
  size_t MaxLength = 2048;
  /// Softmax temperature; < 1 sharpens toward the corpus's modal style.
  double Temperature = 0.85;
};

/// Temperature-adjusted draw from a probability distribution:
/// inverse-CDF sampling over the log-space reweighted values
/// w_i = exp(log(p_i)/T), computed in two memoized passes with no
/// intermediate weight vector and no per-token pow() (smoothed
/// distributions repeat one floor probability, so almost every entry
/// hits the memo). Exactly one uniform is drawn from \p R per call,
/// keeping the stream advance independent of the distribution's
/// content. An empty or all-zero distribution yields
/// Vocabulary::EndOfText (the sampler then treats the sample as
/// complete or rejects it) rather than silently picking token 0.
int drawToken(const std::vector<double> &Dist, double Temperature, Rng &R);

/// Samples one candidate kernel string (seed included). Returns nullopt
/// when the sample hit the length cap before closing the kernel body,
/// the model emitted end-of-text prematurely, or the sample closed a
/// brace that was never opened (negative block depth — such text can
/// never be a well-formed kernel, and tracking it further would let a
/// later unrelated {...} pair masquerade as the function body).
std::optional<std::string> sampleKernel(model::LanguageModel &Model,
                                        const std::string &Seed,
                                        const SampleOptions &Opts, Rng &R);

} // namespace core
} // namespace clgen

#endif // CLGEN_CLGEN_SAMPLER_H

//===- tests/stress/ExperimentStampedeTest.cpp - experiment stampede ----------===//
//
// Concurrency stress for the predictive-experiment warm-start layer
// (ctest label "stress", TSan-clean by the same invocations as
// ChannelSoakTest.cpp): a cold-start stampede of concurrent
// runOrLoadExperiment calls on ONE configuration must do the expensive
// compute (training, synthesis, measurement, cross-validation) exactly
// once — the losers consume the winner's three archives on the
// under-lock re-probe — and every racer must come away with
// byte-identical report strings.
//
//===----------------------------------------------------------------------===//

#include "predict/Experiment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace clgen;
using namespace clgen::predict;

namespace fs = std::filesystem;

namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(fs::temp_directory_path() /
             ("clgen_experiment_stampede_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

/// Start barrier: racers block until every thread is staged, so the
/// cold fast-path probes genuinely overlap.
class StartGate {
public:
  void waitAt(size_t Expected) {
    std::unique_lock<std::mutex> Lock(M);
    if (++Arrived >= Expected) {
      Open = true;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [this] { return Open; });
  }

private:
  std::mutex M;
  std::condition_variable Cv;
  size_t Arrived = 0;
  bool Open = false;
};

/// Small experiment: contention is the point, not model quality. Each
/// racer stays single-threaded inside so the stampede itself provides
/// the parallelism.
ExperimentOptions stampedeOptions() {
  ExperimentOptions O;
  O.CorpusFiles = 400;
  O.NGramOrder = 16;
  O.Streaming.Synthesis.TargetKernels = 3;
  O.Streaming.Synthesis.MaxAttempts = 1800;
  O.Streaming.Synthesis.Sampling.Temperature = 0.55;
  O.Streaming.Driver.GlobalSize = 2048;
  O.Streaming.Driver.MaxSimulatedGroups = 4;
  O.Streaming.Driver.RunDynamicCheck = true;
  O.Streaming.RefillFailures = true;
  O.Suites = {"Parboil"};
  O.Runner.MaxSimulatedGroups = 4;
  O.KFold.Folds = 3;
  return O;
}

} // namespace

TEST(ExperimentStampedeTest, ColdStampedeComputesExactlyOnce) {
  ScratchDir Dir("cold");
  ExperimentOptions Opts = stampedeOptions();
  constexpr size_t Racers = 4;

  StartGate Gate;
  std::atomic<size_t> ColdRuns{0}, WarmLoads{0}, Failures{0};
  std::vector<std::string> Reports(Racers);
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Racers; ++T)
    Threads.emplace_back([&, T] {
      Gate.waitAt(Racers);
      auto R = runOrLoadExperiment(Dir.str(), Opts);
      if (!R.ok()) {
        Failures.fetch_add(1);
        return;
      }
      (R.get().Provenance.Warm ? WarmLoads : ColdRuns).fetch_add(1);
      if (R.get().Provenance.Warm) {
        // A warm racer must have been handed the result without doing
        // any training or measurement of its own.
        EXPECT_EQ(R.get().Provenance.TrainedModels, 0u);
        EXPECT_EQ(R.get().Provenance.MeasuredKernels, 0u);
      }
      Reports[T] = R.get().Table1 + R.get().Fig9;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(ColdRuns.load(), 1u)
      << "stampede control must dedupe the cold experiment compute";
  EXPECT_EQ(WarmLoads.load(), Racers - 1);
  for (size_t T = 1; T < Racers; ++T)
    EXPECT_EQ(Reports[T], Reports[0])
        << "every racer must observe byte-identical reports";

  // One more probe: the published archives serve a warm, work-free run.
  auto Warm = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.errorMessage();
  EXPECT_TRUE(Warm.get().Provenance.Warm);
}

TEST(ExperimentStampedeTest, WarmStampedeNeverTouchesLocksOrRecomputes) {
  ScratchDir Dir("warm");
  ExperimentOptions Opts = stampedeOptions();
  auto Prime = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Prime.ok()) << Prime.errorMessage();
  ASSERT_FALSE(Prime.get().Provenance.Warm);

  constexpr size_t Racers = 6;
  StartGate Gate;
  std::atomic<size_t> ColdRuns{0}, Mismatches{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Racers; ++T)
    Threads.emplace_back([&] {
      Gate.waitAt(Racers);
      auto R = runOrLoadExperiment(Dir.str(), Opts);
      if (!R.ok() || !R.get().Provenance.Warm)
        ColdRuns.fetch_add(1);
      else if (R.get().Table1 != Prime.get().Table1 ||
               R.get().Fig9 != Prime.get().Fig9)
        Mismatches.fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(ColdRuns.load(), 0u) << "a warm store must serve every racer";
  EXPECT_EQ(Mismatches.load(), 0u);
}

//===- corpus/ShimHeader.cpp - Inferred-identifier shim header ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/ShimHeader.h"

using namespace clgen;
using namespace clgen::corpus;

const std::string &corpus::shimHeaderText() {
  static const std::string Text = R"(/* Enable OpenCL features */
#define cl_clang_storage_class_specifiers
#define cl_khr_fp64

/* Inferred types */
typedef float FLOAT_T;
typedef float FLOAT_TYPE;
typedef float DTYPE;
typedef float REAL;
typedef float real;
typedef float Real;
typedef float TYPE;
typedef float VALUE_TYPE;
typedef float DATA_TYPE;
typedef float hmc_float;
typedef float4 hmc_float4;
typedef float scalar_t;
typedef float value_type;
typedef unsigned int INDEX_TYPE;
typedef unsigned int uint32_t;
typedef int int32_t;
typedef unsigned char uint8_t;
typedef unsigned short uint16_t;
typedef long int64_t;
typedef unsigned long uint64_t;
typedef unsigned int UINT;
typedef int INT;
typedef float FPTYPE;
typedef int KEY_T;
typedef float T;

/* Inferred constants */
#define M_PI_VALUE 3.14025f
#define WG_SIZE 128
#define WGSIZE 128
#define WORKGROUP_SIZE 128
#define WORK_GROUP_SIZE 128
#define GROUP_SIZE 128
#define BLOCK_SIZE 64
#define BLOCK_DIM 16
#define TILE_SIZE 16
#define TILE_DIM 16
#define LOCAL_SIZE 64
#define LOCAL_MEM_SIZE 2048
#define LSIZE 64
#define SIZE 1024
#define N 1024
#define NUM 1024
#define COUNT 1024
#define NUM_ELEMENTS 1024
#define ELEMENTS 1024
#define LENGTH 1024
#define WIDTH 256
#define HEIGHT 256
#define DEPTH 64
#define DIM 64
#define DIMS 3
#define RADIUS 4
#define FILTER_SIZE 9
#define KERNEL_RADIUS 4
#define BINS 256
#define NUM_BINS 256
#define ITERATIONS 16
#define MAX_ITERATIONS 64
#define MAX_ITER 64
#define STEPS 16
#define ALPHA 0.5f
#define BETA 0.25f
#define GAMMA 0.9f
#define EPSILON 0.000001f
#define THRESHOLD 0.5f
#define DELTA 0.01f
#define OFFSET 0
#define STRIDE 1
#define SCALE_FACTOR 2
#define WARP_SIZE 32
#define SIMD_WIDTH 32
#define LIMIT 4096
#define ZERO 0.0f
#define ONE 1.0f
)";
  return Text;
}

std::vector<std::string> corpus::shimTypeNames() {
  return {"FLOAT_T", "FLOAT_TYPE", "DTYPE",      "REAL",      "real",
          "TYPE",    "VALUE_TYPE", "DATA_TYPE",  "INDEX_TYPE", "uint32_t",
          "int32_t", "UINT",       "FPTYPE",     "scalar_t",   "T"};
}

std::vector<std::string> corpus::shimConstantNames() {
  return {"WG_SIZE",    "WGSIZE",       "WORKGROUP_SIZE", "BLOCK_SIZE",
          "TILE_SIZE",  "LOCAL_SIZE",   "SIZE",           "N",
          "NUM_ELEMENTS", "LENGTH",     "WIDTH",          "HEIGHT",
          "BINS",       "ITERATIONS",   "ALPHA",          "EPSILON",
          "THRESHOLD",  "WARP_SIZE",    "LIMIT",          "STRIDE"};
}

//===- githubsim/GithubSim.cpp - Synthetic GitHub content files ---------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "githubsim/GithubSim.h"

#include "suites/KernelPatterns.h"
#include "support/StringUtils.h"

#include <cctype>

using namespace clgen;
using namespace clgen::githubsim;

namespace {

bool isWordChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Word-boundary-aware whole-word replacement.
std::string replaceWord(const std::string &Text, const std::string &From,
                        const std::string &To) {
  std::string Out;
  size_t I = 0;
  while (I < Text.size()) {
    if (Text.compare(I, From.size(), From) == 0 &&
        (I == 0 || !isWordChar(Text[I - 1])) &&
        (I + From.size() >= Text.size() || !isWordChar(Text[I + From.size()]))) {
      Out += To;
      I += From.size();
      continue;
    }
    Out += Text[I++];
  }
  return Out;
}

/// Pools of "human" identifier names. Lowercase only, and disjoint from
/// every shim-provided identifier so valid files stay valid under shim
/// injection.
const char *BufferNames[] = {"input",  "output",  "src",    "dst",
                             "buffer", "values",  "result", "samples",
                             "weights", "grid",   "field",  "img",
                             "accum",  "scratch", "lhs",    "rhs"};
const char *IndexNames[] = {"idx", "tid", "pos", "cursor", "index",
                            "work_id", "item", "lane"};
const char *ScalarNames[] = {"count", "total", "len", "num_items",
                             "elements", "problem_size", "dim_x"};
const char *LocalNames[] = {"cache", "shared_buf", "sdata", "block",
                            "tile_mem", "staging"};
const char *MiscNames[] = {"val",  "tmp",  "partial", "current", "prev_v",
                           "next_v", "accv", "pivot",  "theta",   "factor"};

const char *CommentHeaders[] = {
    "/*\n * OpenCL kernel extracted from production code.\n */\n",
    "// Auto-tuned device kernel. Do not edit by hand.\n",
    "/* Copyright (c) project authors. BSD license. */\n",
    "// TODO: benchmark against the CUDA implementation\n",
    "/* Device-side implementation. See host.c for the setup code. */\n",
};

const char *InlineComments[] = {
    "  // accumulate partial results\n",
    "  // NB: assumes power-of-two input\n",
    "  /* each work item handles one element */\n",
    "  // index into the flattened array\n",
};

/// Renames the fixed identifier set used by the pattern library to
/// randomly chosen human names (consistently within one file).
std::string humanise(std::string Src, Rng &R) {
  auto Pick = [&R](const auto &Pool) {
    return std::string(Pool[R.bounded(std::size(Pool))]);
  };
  // Pattern sources draw from this closed set of names.
  const char *PatternVars[] = {"a",  "b",   "c",    "x",    "y",
                               "in", "out", "data", "vals", "cols",
                               "hist", "seeds", "sorted", "keys",
                               "adj", "dist", "frontier", "prev",
                               "cost", "next", "t", "px", "py", "fx",
                               "price", "strike", "call", "put",
                               "points", "centroids", "labels", "m",
                               "o", "v"};
  std::vector<std::string> Used;
  for (const char *Var : PatternVars) {
    // Leave some names untouched for variety.
    if (R.chance(0.3))
      continue;
    std::string Fresh;
    for (int Attempt = 0; Attempt < 8; ++Attempt) {
      switch (R.bounded(4)) {
      case 0: Fresh = Pick(BufferNames); break;
      case 1: Fresh = Pick(MiscNames); break;
      case 2: Fresh = Pick(LocalNames); break;
      default: Fresh = Pick(BufferNames); break;
      }
      bool Clash = false;
      for (const std::string &U : Used)
        Clash |= U == Fresh;
      if (!Clash)
        break;
    }
    Used.push_back(Fresh);
    Src = replaceWord(Src, Var, Fresh);
  }
  if (R.chance(0.6))
    Src = replaceWord(Src, "i", Pick(IndexNames));
  if (R.chance(0.6))
    Src = replaceWord(Src, "n", Pick(ScalarNames));
  if (R.chance(0.5))
    Src = replaceWord(Src, "tile", Pick(LocalNames));
  return Src;
}

/// Adds GitHub-style noise: comments, macros, conditional compilation.
std::string addNoise(std::string Src, Rng &R) {
  std::string Out;
  if (R.chance(0.7))
    Out += CommentHeaders[R.bounded(std::size(CommentHeaders))];

  if (R.chance(0.35)) {
    // Type macro indirection, Figure 5a style.
    Out += "#define DTYPE float\n";
    Src = replaceWord(Src, "float", "DTYPE");
  } else if (R.chance(0.2)) {
    Out += "#ifdef USE_DOUBLE\n#define REAL double\n#else\n#define REAL "
           "float\n#endif\n";
    Src = replaceWord(Src, "float", "REAL");
  }
  if (R.chance(0.25)) {
    Out += "#define SCALE(v) ((v) * 2.0f)\n";
    // Wrap the first multiplication by 2.0f if present.
    size_t Pos = Src.find("* 2.0f");
    if (Pos != std::string::npos) {
      // Leave as-is; the macro simply rides along unused sometimes.
    }
  }
  Out += "\n";

  // Sprinkle inline comments at statement boundaries.
  std::string Final;
  for (const std::string &Line : splitLines(Src)) {
    Final += Line;
    Final += '\n';
    if (R.chance(0.06))
      Final += InlineComments[R.bounded(std::size(InlineComments))];
  }
  return Out + Final;
}

/// Renders a random valid pattern kernel in raw style.
std::string rawValidKernel(Rng &R, const std::string &KernelName) {
  auto Kinds = suites::allPatternKinds();
  suites::PatternKind Kind = Kinds[R.bounded(Kinds.size())];
  suites::PatternStyle Style;
  // Knob ranges span everything the benchmark suites use, so the corpus
  // (and hence CLgen's samples) covers the same feature-space regions.
  Style.ComputeIntensity = 1 + static_cast<int>(R.bounded(6));
  Style.ExtraBranching = R.chance(0.3);
  const int IterChoices[] = {16, 24, 32, 48, 64, 96, 128, 160};
  Style.InnerIterations =
      IterChoices[R.bounded(std::size(IterChoices))];
  if (R.chance(0.25))
    Style.VectorWidth = R.chance(0.5) ? 4 : 2;
  std::string Src = suites::renderPattern(Kind, Style, KernelName);
  return humanise(std::move(Src), R);
}

/// The Figure 5a content file, verbatim (macro-indirected SAXPY with a
/// helper function).
std::string figure5aFile() {
  return "#define DTYPE float\n"
         "#define ALPHA(a) 3.5f * a\n"
         "inline DTYPE ax(DTYPE x) { return ALPHA(x); }\n"
         "\n"
         "__kernel void saxpy(/* SAXPY kernel */\n"
         "                    __global DTYPE* input1,\n"
         "                    __global DTYPE* input2,\n"
         "                    const int nelem) {\n"
         "  unsigned int idx = get_global_id(0);\n"
         "  // = ax + y\n"
         "  if (idx < nelem) {\n"
         "    input2[idx] += ax(input1[idx]); }}\n";
}

/// A valid file with a helper function in use.
std::string helperFile(Rng &R) {
  const char *Helpers[] = {
      "inline float squash(float v) { return v / (1.0f + fabs(v)); }\n",
      "inline float weight(float v, float w) { return v * w + 0.5f; }\n",
      "float relu(float v) { if (v < 0.0f) { return 0.0f; } return v; }\n",
  };
  int H = static_cast<int>(R.bounded(std::size(Helpers)));
  std::string Call[] = {"squash(input[idx])",
                        "weight(input[idx], 0.75f)", "relu(input[idx])"};
  return std::string(Helpers[H]) +
         "\n__kernel void apply_fn(__global float* input, __global float* "
         "output, const int count) {\n"
         "  int idx = get_global_id(0);\n"
         "  if (idx < count) {\n"
         "    output[idx] = " +
         Call[H] + ";\n  }\n}\n";
}

/// A shim-fixable file: valid code relying on identifiers the shim
/// provides.
std::string shimFixableFile(Rng &R) {
  switch (R.bounded(3)) {
  case 0:
    // Project typedef lost with the host code.
    return "__kernel void scale_buf(__global FLOAT_T* buf, const int "
           "count) {\n"
           "  int idx = get_global_id(0);\n"
           "  if (idx < count) {\n"
           "    buf[idx] = buf[idx] * 0.5f;\n  }\n}\n";
  case 1:
    // Work-group size constant from a build script -D flag.
    return "__kernel void block_sum(__global float* input, __global float* "
           "output, const int count) {\n"
           "  __local float cache[WG_SIZE];\n"
           "  int lid = get_local_id(0) % WG_SIZE;\n"
           "  cache[lid] = input[get_global_id(0) % count];\n"
           "  barrier(CLK_LOCAL_MEM_FENCE);\n"
           "  if (lid == 0) {\n"
           "    float s = 0.0f;\n"
           "    for (int k = 0; k < WG_SIZE; k++) {\n      s += cache[k];\n"
           "    }\n"
           "    output[get_group_id(0) % count] = s;\n  }\n}\n";
  default:
    // Numeric constants from a missing project header.
    return "typedef float myreal;\n"
           "__kernel void decay(__global myreal* field, const int count) "
           "{\n"
           "  int idx = get_global_id(0);\n"
           "  if (idx < count) {\n"
           "    field[idx] = field[idx] * GAMMA + EPSILON * ALPHA;\n"
           "  }\n}\n";
  }
}

/// A file that no shim can save.
std::string hopelessFile(Rng &R, const std::string &ValidSeed) {
  switch (R.bounded(6)) {
  case 0:
    // Host-side C++ that the scraper misclassified.
    return "#include <vector>\n#include \"runner.h\"\n\n"
           "using namespace std;\n\n"
           "class KernelRunner {\n public:\n  void run(int device);\n"
           " private:\n  vector<float> data_;\n};\n";
  case 1:
    // User-defined aggregate types (unsupported input class).
    return "typedef struct {\n  float x;\n  float y;\n} point_t;\n\n"
           "__kernel void move_points(__global point_t* pts, const int n) "
           "{\n  int i = get_global_id(0);\n  if (i < n) {\n"
           "    pts[i].x += 0.1f;\n  }\n}\n";
  case 2: {
    // Truncated download.
    std::string Cut = ValidSeed.substr(0, ValidSeed.size() * 3 / 5);
    return Cut;
  }
  case 3:
    // switch statements are outside the modelled subset.
    return "__kernel void dispatch(__global int* v, const int n, const int "
           "mode) {\n  int i = get_global_id(0);\n  switch (mode) {\n"
           "  case 0: v[i] = 0; break;\n  default: v[i] = 1; break;\n"
           "  }\n}\n";
  case 4:
    // Undeclared project identifier the shim does not know.
    return "__kernel void apply_lut(__global float* buf, const int n) {\n"
           "  int i = get_global_id(0);\n"
           "  if (i < n) {\n"
           "    buf[i] = buf[i] * MY_PROJECT_LUT_SCALE;\n  }\n}\n";
  default:
    // Below the minimum static instruction count.
    return "__kernel void noop(__global float* unused) {}\n";
  }
}

} // namespace

std::vector<corpus::ContentFile>
githubsim::mineGithub(const GithubSimOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<corpus::ContentFile> Files;
  Files.reserve(Opts.FileCount);

  for (size_t I = 0; I < Opts.FileCount; ++I) {
    corpus::ContentFile File;
    File.Path = formatString("repo_%03zu/kernels/file_%04zu.cl",
                             I % 793, I);
    double Roll = R.uniform();
    if (Roll < Opts.HopelessFraction) {
      std::string Seed = rawValidKernel(R, formatString("kern_%zu", I));
      File.Text = hopelessFile(R, addNoise(Seed, R));
    } else if (Roll < Opts.HopelessFraction + Opts.ShimFixableFraction) {
      File.Text = addNoise(shimFixableFile(R), R);
    } else {
      // Valid file.
      double Kind = R.uniform();
      if (Kind < 0.05) {
        File.Text = figure5aFile();
      } else if (Kind < 0.15) {
        File.Text = helperFile(R);
      } else {
        std::string Body = rawValidKernel(R, formatString("kern_%zu", I));
        if (R.chance(Opts.MultiKernelFraction))
          Body += "\n" + rawValidKernel(R, formatString("kern_%zu_b", I));
        File.Text = addNoise(Body, R);
      }
    }
    Files.push_back(std::move(File));
  }
  return Files;
}

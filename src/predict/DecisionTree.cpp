//===- predict/DecisionTree.cpp - CART decision tree --------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/DecisionTree.h"

#include "store/Archive.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace clgen;
using namespace clgen::predict;

namespace {

double giniImpurity(size_t Ones, size_t Total) {
  if (Total == 0)
    return 0.0;
  double P = static_cast<double>(Ones) / static_cast<double>(Total);
  return 2.0 * P * (1.0 - P);
}

} // namespace

void DecisionTree::fit(const std::vector<std::vector<double>> &X,
                       const std::vector<int> &Y) {
  assert(X.size() == Y.size() && "row/label count mismatch");
  Nodes.clear();
  if (X.empty()) {
    Node Root;
    Root.Leaf = true;
    Root.Label = 0;
    Nodes.push_back(Root);
    return;
  }
  std::vector<size_t> Rows(X.size());
  for (size_t I = 0; I < X.size(); ++I)
    Rows[I] = I;
  build(X, Y, Rows, 0);
}

int DecisionTree::build(const std::vector<std::vector<double>> &X,
                        const std::vector<int> &Y,
                        std::vector<size_t> &Rows, int Depth) {
  size_t Ones = 0;
  for (size_t R : Rows)
    Ones += Y[R] == 1;

  int NodeIndex = static_cast<int>(Nodes.size());
  Nodes.emplace_back();
  {
    Node &N = Nodes.back();
    N.Label = Ones * 2 >= Rows.size() ? 1 : 0;
    N.Probability = Rows.empty()
                        ? 0.0
                        : static_cast<double>(Ones) /
                              static_cast<double>(Rows.size());
  }

  bool Pure = Ones == 0 || Ones == Rows.size();
  if (Pure || Depth >= Opts.MaxDepth || Rows.size() < Opts.MinSamplesSplit)
    return NodeIndex;

  // Exhaustive best-split search: for each feature, sort rows by value
  // and scan thresholds between distinct values.
  size_t Width = X[Rows[0]].size();
  double BestGain = 1e-12;
  int BestFeature = -1;
  double BestThreshold = 0.0;

  double ParentImpurity = giniImpurity(Ones, Rows.size());
  std::vector<size_t> Sorted = Rows;

  for (size_t F = 0; F < Width; ++F) {
    std::sort(Sorted.begin(), Sorted.end(), [&](size_t A, size_t B) {
      if (X[A][F] != X[B][F])
        return X[A][F] < X[B][F];
      return A < B;
    });
    size_t LeftOnes = 0;
    for (size_t I = 1; I < Sorted.size(); ++I) {
      LeftOnes += Y[Sorted[I - 1]] == 1;
      if (X[Sorted[I]][F] == X[Sorted[I - 1]][F])
        continue;
      size_t LeftCount = I;
      size_t RightCount = Sorted.size() - I;
      if (LeftCount < Opts.MinSamplesLeaf || RightCount < Opts.MinSamplesLeaf)
        continue;
      size_t RightOnes = Ones - LeftOnes;
      double Impurity =
          (static_cast<double>(LeftCount) * giniImpurity(LeftOnes, LeftCount) +
           static_cast<double>(RightCount) *
               giniImpurity(RightOnes, RightCount)) /
          static_cast<double>(Sorted.size());
      double Gain = ParentImpurity - Impurity;
      if (Gain > BestGain) {
        BestGain = Gain;
        BestFeature = static_cast<int>(F);
        BestThreshold = 0.5 * (X[Sorted[I]][F] + X[Sorted[I - 1]][F]);
      }
    }
  }

  if (BestFeature < 0)
    return NodeIndex;

  std::vector<size_t> LeftRows, RightRows;
  for (size_t R : Rows) {
    if (X[R][BestFeature] < BestThreshold)
      LeftRows.push_back(R);
    else
      RightRows.push_back(R);
  }
  if (LeftRows.empty() || RightRows.empty())
    return NodeIndex;

  int Left = build(X, Y, LeftRows, Depth + 1);
  int Right = build(X, Y, RightRows, Depth + 1);
  Node &N = Nodes[NodeIndex];
  N.Leaf = false;
  N.Feature = BestFeature;
  N.Threshold = BestThreshold;
  N.Left = Left;
  N.Right = Right;
  return NodeIndex;
}

const DecisionTree::Node &
DecisionTree::leafFor(const std::vector<double> &X) const {
  assert(trained() && "predict before fit");
  const Node *N = &Nodes[0];
  while (!N->Leaf) {
    assert(static_cast<size_t>(N->Feature) < X.size());
    N = X[N->Feature] < N->Threshold ? &Nodes[N->Left] : &Nodes[N->Right];
  }
  return *N;
}

int DecisionTree::predict(const std::vector<double> &X) const {
  return leafFor(X).Label;
}

double DecisionTree::predictProbability(const std::vector<double> &X) const {
  return leafFor(X).Probability;
}

void DecisionTree::serialize(store::ArchiveWriter &W) const {
  W.writeI32(Opts.MaxDepth);
  W.writeU64(Opts.MinSamplesLeaf);
  W.writeU64(Opts.MinSamplesSplit);
  W.writeU64(Nodes.size());
  for (const Node &N : Nodes) {
    W.writeBool(N.Leaf);
    W.writeI32(N.Feature);
    W.writeF64(N.Threshold);
    W.writeI32(N.Left);
    W.writeI32(N.Right);
    W.writeI32(N.Label);
    W.writeF64(N.Probability);
  }
}

DecisionTree DecisionTree::deserialize(store::ArchiveReader &R) {
  DecisionTree T;
  T.Opts.MaxDepth = R.readI32();
  T.Opts.MinSamplesLeaf = R.readU64();
  T.Opts.MinSamplesSplit = R.readU64();
  uint64_t Count = R.readU64();
  // A tree over a few hundred observations has tens of nodes; a
  // million-node count is a corrupt length field, not a model.
  if (Count > (1u << 20)) {
    R.fail("implausible decision-tree node count");
    return DecisionTree();
  }
  T.Nodes.reserve(Count);
  for (uint64_t I = 0; I < Count && R.ok(); ++I) {
    Node N;
    N.Leaf = R.readBool();
    N.Feature = R.readI32();
    N.Threshold = R.readF64();
    N.Left = R.readI32();
    N.Right = R.readI32();
    N.Label = R.readI32();
    N.Probability = R.readF64();
    if (!N.Leaf) {
      // build() appends children after their parent, so stored child
      // indices must point strictly forward and stay in the table —
      // the invariant that bounds every prediction walk.
      bool LeftOk = N.Left > static_cast<int>(I) &&
                    N.Left < static_cast<int>(Count);
      bool RightOk = N.Right > static_cast<int>(I) &&
                     N.Right < static_cast<int>(Count);
      if (!LeftOk || !RightOk || N.Feature < 0) {
        R.fail("decision-tree split node with invalid children");
        return DecisionTree();
      }
    }
    T.Nodes.push_back(N);
  }
  if (!R.ok())
    return DecisionTree();
  return T;
}

std::string
DecisionTree::dump(const std::vector<std::string> &FeatureNames) const {
  std::string Out;
  // Iterative preorder walk with explicit depth.
  std::vector<std::pair<int, int>> Stack = {{0, 0}};
  while (!Stack.empty()) {
    auto [Index, Depth] = Stack.back();
    Stack.pop_back();
    const Node &N = Nodes[Index];
    Out += std::string(static_cast<size_t>(Depth) * 2, ' ');
    if (N.Leaf) {
      Out += formatString("leaf: class %d (p1=%.2f)\n", N.Label,
                          N.Probability);
      continue;
    }
    std::string Name =
        static_cast<size_t>(N.Feature) < FeatureNames.size()
            ? FeatureNames[N.Feature]
            : formatString("f%d", N.Feature);
    Out += formatString("%s < %.4g ?\n", Name.c_str(), N.Threshold);
    Stack.push_back({N.Right, Depth + 1});
    Stack.push_back({N.Left, Depth + 1});
  }
  return Out;
}

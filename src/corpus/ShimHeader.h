//===- corpus/ShimHeader.h - Inferred-identifier shim header -----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shim header of Listing 1: inferred type aliases and constants for
/// OpenCL code mined from GitHub. Isolating device code from its host
/// project leaves identifiers like FLOAT_T or WG_SIZE undeclared; the
/// paper found 50% of undeclared-identifier errors were caused by only 60
/// unique identifiers, and that injecting the shim reduced the discard
/// rate from 40% to 32%.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CORPUS_SHIMHEADER_H
#define CLGEN_CORPUS_SHIMHEADER_H

#include <string>
#include <vector>

namespace clgen {
namespace corpus {

/// The shim header source (typedefs + #defines).
const std::string &shimHeaderText();

/// The identifiers the shim provides (used by githubsim to create
/// shim-fixable content files and by tests).
std::vector<std::string> shimTypeNames();
std::vector<std::string> shimConstantNames();

} // namespace corpus
} // namespace clgen

#endif // CLGEN_CORPUS_SHIMHEADER_H

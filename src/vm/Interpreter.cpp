//===- vm/Interpreter.cpp - Instrumented NDRange interpreter ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "ocl/Builtins.h"
#include "support/FailPoint.h"
#include "support/StringUtils.h"
#include "vm/Compiler.h"
#include "vm/Profile.h"

#include <chrono>
#include <cmath>

/// Computed-goto (label-address-table) dispatch is a GCC/Clang extension;
/// CLGS_FORCE_SWITCH_DISPATCH (cmake -DCLGS_FORCE_SWITCH_DISPATCH=ON)
/// disables it so CI can exercise the portable fallback loop on
/// compilers that do have the extension.
#if (defined(__GNUC__) || defined(__clang__)) &&                               \
    !defined(CLGS_FORCE_SWITCH_DISPATCH)
#define CLGS_VM_COMPUTED_GOTO 1
#else
#define CLGS_VM_COMPUTED_GOTO 0
#endif

using namespace clgen;
using namespace clgen::ocl;
using namespace clgen::vm;

namespace {

int64_t toInt(double X) {
  if (std::isnan(X))
    return 0;
  if (X > 9.2e18)
    return INT64_MAX;
  if (X < -9.2e18)
    return INT64_MIN;
  return static_cast<int64_t>(X);
}

double wrapToScalarKind(double X, Scalar S) {
  switch (S) {
  case Scalar::Bool:
    return X != 0.0 ? 1.0 : 0.0;
  case Scalar::Char:
    return static_cast<double>(static_cast<int8_t>(toInt(X)));
  case Scalar::UChar:
    return static_cast<double>(static_cast<uint8_t>(toInt(X)));
  case Scalar::Short:
    return static_cast<double>(static_cast<int16_t>(toInt(X)));
  case Scalar::UShort:
    return static_cast<double>(static_cast<uint16_t>(toInt(X)));
  case Scalar::Int:
    return static_cast<double>(static_cast<int32_t>(toInt(X)));
  case Scalar::UInt:
    return static_cast<double>(static_cast<uint32_t>(toInt(X)));
  case Scalar::Long:
  case Scalar::ULong:
    return static_cast<double>(toInt(X));
  case Scalar::Float:
    // Round through IEEE single precision so float kernels behave like
    // float kernels.
    return static_cast<double>(static_cast<float>(X));
  case Scalar::Half:
  case Scalar::Double:
  case Scalar::Void:
    return X;
  }
  return X;
}

// Forced inline so every caller — including each fused-handler
// expansion of CLGS_FUSED_BIN in InterpreterExecLoop.inc — gets its own
// copy of the operation switch. A single shared switch concentrates
// every binop's data-dependent indirect branch in one site; per-site
// copies let the BTB learn each site's local operation mix.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline double evalBinLane(VmBinOp Op, double A, double B) {
  switch (Op) {
  case VmBinOp::Add: return A + B;
  case VmBinOp::Sub: return A - B;
  case VmBinOp::Mul: return A * B;
  case VmBinOp::DivF: return A / B;
  case VmBinOp::DivI: {
    int64_t IB = toInt(B);
    return IB == 0 ? 0.0 : static_cast<double>(toInt(A) / IB);
  }
  case VmBinOp::RemI: {
    int64_t IB = toInt(B);
    return IB == 0 ? 0.0 : static_cast<double>(toInt(A) % IB);
  }
  case VmBinOp::RemF: return std::fmod(A, B);
  case VmBinOp::Shl: return static_cast<double>(toInt(A) << (toInt(B) & 63));
  case VmBinOp::Shr: return static_cast<double>(toInt(A) >> (toInt(B) & 63));
  case VmBinOp::And: return static_cast<double>(toInt(A) & toInt(B));
  case VmBinOp::Or: return static_cast<double>(toInt(A) | toInt(B));
  case VmBinOp::Xor: return static_cast<double>(toInt(A) ^ toInt(B));
  case VmBinOp::Lt: return A < B ? 1.0 : 0.0;
  case VmBinOp::Le: return A <= B ? 1.0 : 0.0;
  case VmBinOp::Gt: return A > B ? 1.0 : 0.0;
  case VmBinOp::Ge: return A >= B ? 1.0 : 0.0;
  case VmBinOp::Eq: return A == B ? 1.0 : 0.0;
  case VmBinOp::Ne: return A != B ? 1.0 : 0.0;
  case VmBinOp::MinI: return A < B ? A : B;
  case VmBinOp::MaxI: return A > B ? A : B;
  }
  return 0.0;
}

//===----------------------------------------------------------------------===//
// Register-file write helpers (threaded dispatch)
//===----------------------------------------------------------------------===//
//
// The reference switch loop writes results by assigning a fresh
// zero-initialised Value, so lanes at or beyond a register's Width are
// always zero. The threaded loop exploits that invariant with partial
// writes: only live lanes are stored, and previously-live lanes beyond
// the new width are re-zeroed, keeping the observable register file
// byte-identical to full-Value assignment.

inline void setScalar(Value &D, double X) {
  int OldW = D.Width;
  D.Lanes[0] = X;
  for (int L = 1; L < OldW; ++L)
    D.Lanes[L] = 0.0;
  D.Width = 1;
}

inline void copyValue(Value &D, const Value &S) {
  int W = S.Width, OldW = D.Width;
  for (int L = 0; L < W; ++L)
    D.Lanes[L] = S.Lanes[L];
  for (int L = W; L < OldW; ++L)
    D.Lanes[L] = 0.0;
  D.Width = static_cast<uint8_t>(W);
}

/// Commits a result computed into a scratch lane buffer (which makes
/// Dst-aliases-source safe, same as the switch loop's local Value).
inline void writeLanes(Value &D, const double *Tmp, int W) {
  int OldW = D.Width;
  for (int L = 0; L < W; ++L)
    D.Lanes[L] = Tmp[L];
  for (int L = W; L < OldW; ++L)
    D.Lanes[L] = 0.0;
  D.Width = static_cast<uint8_t>(W);
}

/// Cast semantics shared by the threaded Cast handler and the Cast+Mov
/// superinstruction; verbatim the reference loop's Cast case.
inline void castValue(Value *Regs, const Instr &I) {
  const Value &A = Regs[I.A];
  Value R;
  R.Width = A.Width;
  auto S2 = static_cast<Scalar>(I.Aux);
  for (int L = 0; L < R.Width; ++L) {
    double X = A.Lanes[L];
    // Float -> integer conversion truncates toward zero.
    if (S2 != Scalar::Float && S2 != Scalar::Double && S2 != Scalar::Half)
      X = std::trunc(X);
    R.Lanes[L] = wrapToScalarKind(X, S2);
  }
  Regs[I.Dst] = R;
}

/// Vector (or mixed-width) slow path behind the specialized scalar
/// binop handlers. Only non-trapping operations reach this (DivI/RemI
/// dispatch through Engine::execBinInstr for the TrapDivZero check).
inline void binOpVector(Value *Regs, const Instr &I, VmBinOp Op) {
  const Value &A = Regs[I.A];
  const Value &B = Regs[I.B];
  double Tmp[16];
  int W = std::max(A.Width, B.Width);
  for (int L = 0; L < W; ++L)
    Tmp[L] = evalBinLane(Op, A.Lanes[A.Width == 1 ? 0 : L],
                         B.Lanes[B.Width == 1 ? 0 : L]);
  writeLanes(Regs[I.Dst], Tmp, W);
}

/// Per-branch-site taken/total stats within one work-group.
struct BranchStats {
  uint64_t Taken = 0;
  uint64_t Total = 0;
};

/// Shared (per work-group) execution resources.
struct GroupContext {
  std::vector<std::vector<double>> LocalBuffers;
  /// Dense per-site stats, indexed by the launch-time branch-site table
  /// (no hashing on the instruction dispatch path).
  std::vector<BranchStats> BranchSites;
};

/// One work-item's machine state (only materialised for barrier kernels).
struct ItemState {
  std::vector<Value> Regs;
  std::vector<std::vector<double>> PrivBuffers;
  size_t Pc = 0;
  bool Done = false;
  size_t Gid[3] = {0, 0, 0};
  size_t Lid[3] = {0, 0, 0};
  /// Previously executed opcode of THIS item (-1 = none yet), so the
  /// opcode-pair profile never fuses across work-items even when the
  /// barrier path interleaves their execution.
  int16_t PrevOp = -1;
};

/// Reusable per-thread execution scratch: group context, item states and
/// their register/buffer storage survive across work-groups AND across
/// launches (thread_local in launchKernel), so steady-state execution
/// allocates nothing per group.
struct ExecScratch {
  GroupContext Group;
  ItemState Single;
  std::vector<ItemState> States;
  /// Dispatch-resolved execution form for Threaded/ThreadedFused
  /// launches; storage recycled across launches.
  ExecProgram Prog;
};

enum class StepOutcome { Continue, AtBarrier, Halted, Error };

class Engine {
public:
  Engine(const CompiledKernel &K, const std::vector<KernelArg> &Args,
         std::vector<BufferData> &Buffers, const LaunchConfig &Config,
         ExecScratch &Scratch)
      : K(K), Args(Args), Buffers(Buffers), Config(Config),
        Scratch(Scratch) {}

  Result<ExecCounters> run();

private:
  const CompiledKernel &K;
  const std::vector<KernelArg> &Args;
  std::vector<BufferData> &Buffers;
  const LaunchConfig &Config;
  ExecScratch &Scratch;
  ExecCounters C;
  std::string Error;
  /// Param slot -> launch buffer index.
  std::vector<int> SlotToBuffer;
  /// Local-pointer-param slot -> driver-specified size.
  std::vector<size_t> LocalParamSizes;
  /// Scalar param preloads.
  std::vector<std::pair<uint16_t, Value>> ScalarPreloads;
  /// Pc of a conditional branch -> dense branch-site index, resolved
  /// once at launch so the dispatch loop never touches a hash map.
  std::vector<int32_t> BranchSiteOf;
  int BranchSiteCount = 0;
  size_t GroupCount[3] = {1, 1, 1};
  size_t GroupId[3] = {0, 0, 0};
  TrapKind ErrKind = TrapKind::Unknown;
  std::chrono::steady_clock::time_point Start;
  /// Non-null when this launch runs the dispatch-resolved execution
  /// form (Threaded/ThreadedFused) instead of the reference switch loop.
  const ExecInstr *ExecCode = nullptr;
  /// Instruction count at which the wall-clock watchdog samples next;
  /// UINT64_MAX when the watchdog is disabled. Deadline-based (>=)
  /// rather than a mask test so dispatch strategies retiring more than
  /// one instruction per step (superinstructions) can never stride over
  /// a sample point.
  uint64_t WatchdogNext = UINT64_MAX;

  bool fail(const std::string &Message) {
    return fail(TrapKind::Unknown, Message);
  }

  bool fail(TrapKind Kind, const std::string &Message) {
    if (Error.empty()) {
      Error = Message;
      ErrKind = Kind;
    }
    return false;
  }

  /// Crossed the watchdog deadline: re-arm it and check elapsed host
  /// time. Returns false (with the trap recorded) on timeout. The 32768
  /// cadence keeps the clock read off the hot path, so a run that
  /// completes in time never perturbs its counters.
  bool watchdogSampleOk(uint64_t Icount) {
    WatchdogNext = Icount + 0x8000;
    if (static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count()) >= Config.WatchdogMs) {
      fail(TrapKind::WatchdogTimeout,
           formatString("kernel exceeded wall-clock watchdog (%llu ms)",
                        static_cast<unsigned long long>(Config.WatchdogMs)));
      return false;
    }
    return true;
  }

  bool bindArgs() {
    if (Args.size() != K.Params.size())
      return fail(TrapKind::BadLaunch,
                  formatString("kernel '%s' expects %zu arguments, got %zu",
                               K.Name.c_str(), K.Params.size(), Args.size()));
    SlotToBuffer.assign(K.bufferParamCount(), -1);
    LocalParamSizes.assign(K.LocalBuffers.size(), 0);
    for (size_t I = 0; I < Args.size(); ++I) {
      const ParamInfo &P = K.Params[I];
      const KernelArg &A = Args[I];
      if (P.IsBuffer && P.Ty.AS == AddrSpace::Local) {
        if (A.K != KernelArg::Kind::LocalSize)
          return fail(TrapKind::BadLaunch,
                      formatString("argument %zu: __local pointer needs a "
                                   "local size binding",
                                   I));
        LocalParamSizes[P.BufferSlot] = A.LocalElements;
        continue;
      }
      if (P.IsBuffer) {
        if (A.K != KernelArg::Kind::GlobalBuffer)
          return fail(TrapKind::BadLaunch,
                      formatString("argument %zu: expected a buffer", I));
        if (A.BufferIndex < 0 ||
            static_cast<size_t>(A.BufferIndex) >= Buffers.size())
          return fail(TrapKind::BadLaunch,
                      formatString("argument %zu: buffer index out of "
                                   "range",
                                   I));
        if (Buffers[A.BufferIndex].ElemWidth != P.Ty.VecWidth)
          return fail(TrapKind::BadLaunch,
                      formatString("argument %zu: element width mismatch "
                                   "(buffer %d, param %d)",
                                   I, Buffers[A.BufferIndex].ElemWidth,
                                   P.Ty.VecWidth));
        SlotToBuffer[P.BufferSlot] = A.BufferIndex;
        continue;
      }
      if (A.K != KernelArg::Kind::Scalar)
        return fail(TrapKind::BadLaunch,
                    formatString("argument %zu: expected a scalar", I));
      Value V = A.Scalar;
      // Broadcast scalars to vector-typed params when needed.
      if (P.Ty.VecWidth > 1 && V.Width == 1)
        V = Value::splat(V.x(), P.Ty.VecWidth);
      ScalarPreloads.push_back({P.Reg, V});
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Instruction stepping
  //===------------------------------------------------------------------===//

  StepOutcome step(ItemState &S, GroupContext &G) {
    if (C.Instructions >= Config.MaxInstructions) {
      fail(TrapKind::InstructionBudget,
           "kernel exceeded instruction budget (timeout)");
      return StepOutcome::Error;
    }
    // The wall-clock watchdog is sampled every 32768 instructions so the
    // hot dispatch loop pays one predictable branch when it is disabled
    // (WatchdogNext stays at UINT64_MAX).
    if (C.Instructions >= WatchdogNext && !watchdogSampleOk(C.Instructions))
      return StepOutcome::Error;
    const Instr &I = K.Code[S.Pc];
    ++C.Instructions;
    if (OpcodeProfile *Prof = Config.Profile) {
      size_t OpIdx = static_cast<size_t>(I.Op);
      ++Prof->Count[OpIdx];
      if (S.PrevOp >= 0)
        ++Prof->Pair[S.PrevOp][OpIdx];
      S.PrevOp = static_cast<int16_t>(OpIdx);
    }
    switch (I.Op) {
    case Opcode::LoadConst:
      S.Regs[I.Dst] = K.Consts[I.Imm];
      break;
    case Opcode::Mov:
      S.Regs[I.Dst] = S.Regs[I.A];
      break;
    case Opcode::BinOp: {
      ++C.ComputeOps;
      const Value &A = S.Regs[I.A];
      const Value &B = S.Regs[I.B];
      Value R;
      R.Width = std::max(A.Width, B.Width);
      auto Op = static_cast<VmBinOp>(I.Aux);
      if (Config.TrapDivZero &&
          (Op == VmBinOp::DivI || Op == VmBinOp::RemI)) {
        for (int L = 0; L < R.Width; ++L)
          if (toInt(B.Lanes[B.Width == 1 ? 0 : L]) == 0) {
            fail(TrapKind::DivByZero, "integer division by zero");
            return StepOutcome::Error;
          }
      }
      for (int L = 0; L < R.Width; ++L)
        R.Lanes[L] = evalBinLane(Op, A.Lanes[A.Width == 1 ? 0 : L],
                                 B.Lanes[B.Width == 1 ? 0 : L]);
      S.Regs[I.Dst] = R;
      break;
    }
    case Opcode::UnOp: {
      ++C.ComputeOps;
      const Value &A = S.Regs[I.A];
      Value R;
      R.Width = A.Width;
      for (int L = 0; L < R.Width; ++L) {
        switch (static_cast<VmUnOp>(I.Aux)) {
        case VmUnOp::Neg: R.Lanes[L] = -A.Lanes[L]; break;
        case VmUnOp::BitNot:
          R.Lanes[L] = static_cast<double>(~toInt(A.Lanes[L]));
          break;
        case VmUnOp::LogicNot:
          R.Lanes[L] = A.Lanes[L] == 0.0 ? 1.0 : 0.0;
          break;
        }
      }
      S.Regs[I.Dst] = R;
      break;
    }
    case Opcode::Cast: {
      ++C.ComputeOps;
      const Value &A = S.Regs[I.A];
      Value R;
      R.Width = A.Width;
      auto S2 = static_cast<Scalar>(I.Aux);
      for (int L = 0; L < R.Width; ++L) {
        double X = A.Lanes[L];
        // Float -> integer conversion truncates toward zero.
        if (S2 != Scalar::Float && S2 != Scalar::Double && S2 != Scalar::Half)
          X = std::trunc(X);
        R.Lanes[L] = wrapToScalarKind(X, S2);
      }
      S.Regs[I.Dst] = R;
      break;
    }
    case Opcode::Broadcast:
      S.Regs[I.Dst] =
          Value::splat(S.Regs[I.A].x(), static_cast<uint8_t>(I.B));
      break;
    case Opcode::Swizzle: {
      const Value &A = S.Regs[I.A];
      const auto &Mask = K.Masks[I.Imm];
      Value R;
      R.Width = static_cast<uint8_t>(Mask.size());
      for (size_t L = 0; L < Mask.size(); ++L)
        R.Lanes[L] = A.Lanes[Mask[L]];
      S.Regs[I.Dst] = R;
      break;
    }
    case Opcode::InsertLanes: {
      Value &D = S.Regs[I.Dst];
      const Value &B = S.Regs[I.B];
      const auto &Mask = K.Masks[I.Imm];
      for (size_t L = 0; L < Mask.size(); ++L)
        D.Lanes[Mask[L]] = B.Lanes[B.Width == 1 ? 0 : L];
      break;
    }
    case Opcode::BuildVec: {
      const auto &Regs = K.ArgLists[I.Imm];
      Value R;
      R.Width = static_cast<uint8_t>(Regs.size());
      for (size_t L = 0; L < Regs.size(); ++L)
        R.Lanes[L] = S.Regs[Regs[L]].x();
      S.Regs[I.Dst] = R;
      break;
    }
    case Opcode::LoadMem:
    case Opcode::StoreMem:
      if (!execMemAccess(S, G, I))
        return StepOutcome::Error;
      break;
    case Opcode::VLoad:
    case Opcode::VStore:
      if (!execVectorAccess(S, G, I))
        return StepOutcome::Error;
      break;
    case Opcode::CallB:
      if (!execBuiltin(S, I))
        return StepOutcome::Error;
      break;
    case Opcode::Atomic:
      if (!execAtomic(S, G, I))
        return StepOutcome::Error;
      break;
    case Opcode::Jmp:
      S.Pc = static_cast<size_t>(I.Imm);
      return StepOutcome::Continue;
    case Opcode::Jz:
    case Opcode::Jnz: {
      ++C.Branches;
      bool Taken = (S.Regs[I.A].x() == 0.0) == (I.Op == Opcode::Jz);
      BranchStats &BS = G.BranchSites[BranchSiteOf[S.Pc]];
      BS.Total += 1;
      BS.Taken += Taken;
      if (Taken) {
        S.Pc = static_cast<size_t>(I.Imm);
        return StepOutcome::Continue;
      }
      break;
    }
    case Opcode::Barrier:
      ++C.Barriers;
      ++S.Pc;
      return StepOutcome::AtBarrier;
    case Opcode::Halt:
      S.Done = true;
      return StepOutcome::Halted;
    }
    ++S.Pc;
    return StepOutcome::Continue;
  }

  /// Full BinOp semantics for the threaded loop: shared by the DivI and
  /// RemI handlers (TrapDivZero check) and by every fused handler's
  /// BinOp constituent. Mirrors the switch loop's BinOp case exactly,
  /// including the ComputeOps increment preceding the trap.
  bool execBinInstr(Value *Regs, const Instr &I) {
    ++C.ComputeOps;
    const Value &A = Regs[I.A];
    const Value &B = Regs[I.B];
    auto Op = static_cast<VmBinOp>(I.Aux);
    if ((A.Width | B.Width) == 1) {
      const double Av = A.Lanes[0];
      const double Bv = B.Lanes[0];
      if (Config.TrapDivZero &&
          (Op == VmBinOp::DivI || Op == VmBinOp::RemI) && toInt(Bv) == 0)
        return fail(TrapKind::DivByZero, "integer division by zero");
      setScalar(Regs[I.Dst], evalBinLane(Op, Av, Bv));
      return true;
    }
    int W = std::max(A.Width, B.Width);
    if (Config.TrapDivZero && (Op == VmBinOp::DivI || Op == VmBinOp::RemI)) {
      for (int L = 0; L < W; ++L)
        if (toInt(B.Lanes[B.Width == 1 ? 0 : L]) == 0)
          return fail(TrapKind::DivByZero, "integer division by zero");
    }
    double Tmp[16];
    for (int L = 0; L < W; ++L)
      Tmp[L] = evalBinLane(Op, A.Lanes[A.Width == 1 ? 0 : L],
                           B.Lanes[B.Width == 1 ? 0 : L]);
    writeLanes(Regs[I.Dst], Tmp, W);
    return true;
  }

  //===------------------------------------------------------------------===//
  // Threaded dispatch over the execution form
  //===------------------------------------------------------------------===//

  /// The exec loops are two instantiations of the same handler bodies
  /// (vm/InterpreterExecLoop.inc): a computed-goto label-address table
  /// on GCC/Clang, and a structurally identical portable switch. The
  /// portable loop is always compiled (so it cannot rot) but only
  /// dispatched to when computed goto is unavailable or forced off.
  [[maybe_unused]] StepOutcome runItemExecSwitch(ItemState &S,
                                                 GroupContext &G);
#if CLGS_VM_COMPUTED_GOTO
  StepOutcome runItemExecGoto(ItemState &S, GroupContext &G);
#endif

  bool execMemAccess(ItemState &S, GroupContext &G, const Instr &I) {
    int64_t Index = toInt(S.Regs[I.A].x());
    std::vector<double> *Storage = nullptr;
    uint8_t ElemWidth = 1;
    switch (I.Space) {
    case MemSpace::Global: {
      int BufIdx = SlotToBuffer[I.Imm];
      BufferData &B = Buffers[BufIdx];
      if (Index < 0 || static_cast<size_t>(Index) >= B.elements())
        return fail(TrapKind::OutOfBounds,
                    formatString("out-of-bounds global access (index %lld "
                                 "of %zu elements)",
                                 static_cast<long long>(Index),
                                 B.elements()));
      Storage = &B.Data;
      ElemWidth = B.ElemWidth;
      if (I.Op == Opcode::LoadMem)
        ++C.GlobalLoads;
      else
        ++C.GlobalStores;
      C.CoalescedGlobal += I.Coalesced;
      break;
    }
    case MemSpace::Local: {
      auto &B = G.LocalBuffers[I.Imm];
      ElemWidth = K.LocalBuffers[I.Imm].ElemWidth;
      if (Index < 0 ||
          static_cast<size_t>(Index) * ElemWidth >= B.size())
        return fail(TrapKind::OutOfBounds, "out-of-bounds local access");
      Storage = &B;
      ++C.LocalAccesses;
      break;
    }
    case MemSpace::Private: {
      auto &B = S.PrivBuffers[I.Imm];
      ElemWidth = K.PrivateBuffers[I.Imm].ElemWidth;
      if (Index < 0 ||
          static_cast<size_t>(Index) * ElemWidth >= B.size())
        return fail(TrapKind::OutOfBounds, "out-of-bounds private access");
      Storage = &B;
      ++C.PrivateAccesses;
      break;
    }
    }
    size_t Base = static_cast<size_t>(Index) * ElemWidth;
    if (I.Op == Opcode::LoadMem) {
      Value R;
      R.Width = ElemWidth;
      for (int L = 0; L < ElemWidth; ++L)
        R.Lanes[L] = (*Storage)[Base + L];
      S.Regs[I.Dst] = R;
    } else {
      const Value &V = S.Regs[I.B];
      for (int L = 0; L < ElemWidth; ++L)
        (*Storage)[Base + L] = V.Lanes[V.Width == 1 ? 0 : L];
    }
    return true;
  }

  bool execVectorAccess(ItemState &S, GroupContext &G, const Instr &I) {
    int64_t Start = toInt(S.Regs[I.A].x());
    int W = I.WidthField;
    std::vector<double> *Storage = nullptr;
    switch (I.Space) {
    case MemSpace::Global: {
      BufferData &B = Buffers[SlotToBuffer[I.Imm]];
      if (B.ElemWidth != 1)
        return fail(TrapKind::BadLaunch,
                    "vload/vstore requires a scalar-element buffer");
      if (Start < 0 || static_cast<size_t>(Start) + W > B.Data.size())
        return fail(TrapKind::OutOfBounds, "out-of-bounds vector access");
      Storage = &B.Data;
      if (I.Op == Opcode::VLoad)
        ++C.GlobalLoads;
      else
        ++C.GlobalStores;
      ++C.CoalescedGlobal;
      break;
    }
    case MemSpace::Local: {
      auto &B = G.LocalBuffers[I.Imm];
      if (Start < 0 || static_cast<size_t>(Start) + W > B.size())
        return fail(TrapKind::OutOfBounds,
                    "out-of-bounds local vector access");
      Storage = &B;
      ++C.LocalAccesses;
      break;
    }
    case MemSpace::Private: {
      auto &B = S.PrivBuffers[I.Imm];
      if (Start < 0 || static_cast<size_t>(Start) + W > B.size())
        return fail(TrapKind::OutOfBounds,
                    "out-of-bounds private vector access");
      Storage = &B;
      ++C.PrivateAccesses;
      break;
    }
    }
    if (I.Op == Opcode::VLoad) {
      Value R;
      R.Width = static_cast<uint8_t>(W);
      for (int L = 0; L < W; ++L)
        R.Lanes[L] = (*Storage)[Start + L];
      S.Regs[I.Dst] = R;
    } else {
      const Value &V = S.Regs[I.B];
      for (int L = 0; L < W; ++L)
        (*Storage)[Start + L] = V.Lanes[L];
    }
    return true;
  }

  bool execAtomic(ItemState &S, GroupContext &G, const Instr &I) {
    int64_t Index = toInt(S.Regs[I.A].x());
    double *Cell = nullptr;
    switch (I.Space) {
    case MemSpace::Global: {
      BufferData &B = Buffers[SlotToBuffer[I.Imm]];
      if (Index < 0 || static_cast<size_t>(Index) >= B.elements())
        return fail(TrapKind::OutOfBounds, "out-of-bounds atomic access");
      Cell = &B.Data[Index * B.ElemWidth];
      break;
    }
    case MemSpace::Local: {
      auto &B = G.LocalBuffers[I.Imm];
      if (Index < 0 || static_cast<size_t>(Index) >= B.size())
        return fail(TrapKind::OutOfBounds, "out-of-bounds atomic access");
      Cell = &B[Index];
      break;
    }
    case MemSpace::Private:
      return fail(TrapKind::BadLaunch, "atomic on private memory");
    }
    ++C.AtomicOps;
    double Old = *Cell;
    double Operand = S.Regs[I.B].x();
    switch (static_cast<BuiltinOp>(I.Aux)) {
    case BuiltinOp::AtomicAdd: *Cell = Old + Operand; break;
    case BuiltinOp::AtomicSub: *Cell = Old - Operand; break;
    case BuiltinOp::AtomicInc: *Cell = Old + 1; break;
    case BuiltinOp::AtomicDec: *Cell = Old - 1; break;
    case BuiltinOp::AtomicMin: *Cell = std::min(Old, Operand); break;
    case BuiltinOp::AtomicMax: *Cell = std::max(Old, Operand); break;
    case BuiltinOp::AtomicXchg: *Cell = Operand; break;
    default: return fail(TrapKind::BadLaunch, "unknown atomic");
    }
    S.Regs[I.Dst] = Value::scalar(Old);
    return true;
  }

  bool execBuiltin(ItemState &S, const Instr &I) {
    const auto &ArgRegs = K.ArgLists[I.Imm];
    auto Op = static_cast<BuiltinOp>(I.Aux);
    auto Arg = [&](size_t N) -> const Value & { return S.Regs[ArgRegs[N]]; };

    // Work-item queries.
    auto Dim = [&](size_t N) -> int {
      int D = static_cast<int>(toInt(Arg(N).x()));
      return D < 0 || D > 2 ? 0 : D;
    };
    switch (Op) {
    case BuiltinOp::GetGlobalId:
      S.Regs[I.Dst] = Value::scalar(static_cast<double>(S.Gid[Dim(0)]));
      return true;
    case BuiltinOp::GetLocalId:
      S.Regs[I.Dst] = Value::scalar(static_cast<double>(S.Lid[Dim(0)]));
      return true;
    case BuiltinOp::GetGroupId:
      S.Regs[I.Dst] = Value::scalar(static_cast<double>(GroupId[Dim(0)]));
      return true;
    case BuiltinOp::GetGlobalSize:
      S.Regs[I.Dst] =
          Value::scalar(static_cast<double>(Config.GlobalSize[Dim(0)]));
      return true;
    case BuiltinOp::GetLocalSize:
      S.Regs[I.Dst] =
          Value::scalar(static_cast<double>(Config.LocalSize[Dim(0)]));
      return true;
    case BuiltinOp::GetNumGroups:
      S.Regs[I.Dst] =
          Value::scalar(static_cast<double>(GroupCount[Dim(0)]));
      return true;
    case BuiltinOp::GetWorkDim:
      S.Regs[I.Dst] = Value::scalar(static_cast<double>(Config.WorkDim));
      return true;
    default:
      break;
    }

    ++C.MathCalls;
    ++C.ComputeOps;

    // Reductions and geometric functions.
    switch (Op) {
    case BuiltinOp::Dot: {
      const Value &A = Arg(0), &B = Arg(1);
      double Sum = 0.0;
      for (int L = 0; L < A.Width; ++L)
        Sum += A.Lanes[L] * B.Lanes[B.Width == 1 ? 0 : L];
      S.Regs[I.Dst] = Value::scalar(Sum);
      return true;
    }
    case BuiltinOp::Length:
    case BuiltinOp::Distance: {
      const Value &A = Arg(0);
      double Sum = 0.0;
      for (int L = 0; L < A.Width; ++L) {
        double D = Op == BuiltinOp::Distance
                       ? A.Lanes[L] - Arg(1).Lanes[Arg(1).Width == 1 ? 0 : L]
                       : A.Lanes[L];
        Sum += D * D;
      }
      S.Regs[I.Dst] = Value::scalar(std::sqrt(Sum));
      return true;
    }
    case BuiltinOp::Normalize: {
      const Value &A = Arg(0);
      double Sum = 0.0;
      for (int L = 0; L < A.Width; ++L)
        Sum += A.Lanes[L] * A.Lanes[L];
      double Len = std::sqrt(Sum);
      Value R;
      R.Width = A.Width;
      for (int L = 0; L < A.Width; ++L)
        R.Lanes[L] = Len == 0.0 ? 0.0 : A.Lanes[L] / Len;
      S.Regs[I.Dst] = R;
      return true;
    }
    case BuiltinOp::Cross: {
      const Value &A = Arg(0), &B = Arg(1);
      Value R;
      R.Width = A.Width;
      R.Lanes[0] = A.Lanes[1] * B.Lanes[2] - A.Lanes[2] * B.Lanes[1];
      R.Lanes[1] = A.Lanes[2] * B.Lanes[0] - A.Lanes[0] * B.Lanes[2];
      R.Lanes[2] = A.Lanes[0] * B.Lanes[1] - A.Lanes[1] * B.Lanes[0];
      if (A.Width == 4)
        R.Lanes[3] = 0.0;
      S.Regs[I.Dst] = R;
      return true;
    }
    case BuiltinOp::Any:
    case BuiltinOp::All: {
      const Value &A = Arg(0);
      bool AnyTrue = false, AllTrue = true;
      for (int L = 0; L < A.Width; ++L) {
        AnyTrue |= A.Lanes[L] != 0.0;
        AllTrue &= A.Lanes[L] != 0.0;
      }
      S.Regs[I.Dst] =
          Value::scalar(Op == BuiltinOp::Any ? AnyTrue : AllTrue);
      return true;
    }
    default:
      break;
    }

    // Elementwise math. Width = max of arg widths.
    uint8_t Width = 1;
    for (uint16_t R : ArgRegs)
      Width = std::max(Width, S.Regs[R].Width);
    Value R;
    R.Width = Width;
    for (int L = 0; L < Width; ++L) {
      auto LaneOf = [&](size_t N) {
        const Value &V = Arg(N);
        return V.Lanes[V.Width == 1 ? 0 : L];
      };
      double X = ArgRegs.empty() ? 0.0 : LaneOf(0);
      double Out = 0.0;
      switch (Op) {
      case BuiltinOp::Sin: Out = std::sin(X); break;
      case BuiltinOp::Cos: Out = std::cos(X); break;
      case BuiltinOp::Tan: Out = std::tan(X); break;
      case BuiltinOp::Asin: Out = std::asin(X); break;
      case BuiltinOp::Acos: Out = std::acos(X); break;
      case BuiltinOp::Atan: Out = std::atan(X); break;
      case BuiltinOp::Sinh: Out = std::sinh(X); break;
      case BuiltinOp::Cosh: Out = std::cosh(X); break;
      case BuiltinOp::Tanh: Out = std::tanh(X); break;
      case BuiltinOp::Exp: Out = std::exp(X); break;
      case BuiltinOp::Exp2: Out = std::exp2(X); break;
      case BuiltinOp::Log: Out = std::log(X); break;
      case BuiltinOp::Log2: Out = std::log2(X); break;
      case BuiltinOp::Log10: Out = std::log10(X); break;
      case BuiltinOp::Sqrt: Out = std::sqrt(X); break;
      case BuiltinOp::Rsqrt: Out = 1.0 / std::sqrt(X); break;
      case BuiltinOp::Cbrt: Out = std::cbrt(X); break;
      case BuiltinOp::Fabs: Out = std::fabs(X); break;
      case BuiltinOp::Floor: Out = std::floor(X); break;
      case BuiltinOp::Ceil: Out = std::ceil(X); break;
      case BuiltinOp::Round: Out = std::round(X); break;
      case BuiltinOp::Trunc: Out = std::trunc(X); break;
      case BuiltinOp::Sign:
        Out = X > 0.0 ? 1.0 : (X < 0.0 ? -1.0 : 0.0);
        break;
      case BuiltinOp::Abs: Out = std::fabs(X); break;
      case BuiltinOp::IsNan: Out = std::isnan(X); break;
      case BuiltinOp::IsInf: Out = std::isinf(X); break;
      case BuiltinOp::Pow: Out = std::pow(X, LaneOf(1)); break;
      case BuiltinOp::Fmod: Out = std::fmod(X, LaneOf(1)); break;
      case BuiltinOp::Atan2: Out = std::atan2(X, LaneOf(1)); break;
      case BuiltinOp::Fmin: Out = std::fmin(X, LaneOf(1)); break;
      case BuiltinOp::Fmax: Out = std::fmax(X, LaneOf(1)); break;
      case BuiltinOp::Min: Out = std::fmin(X, LaneOf(1)); break;
      case BuiltinOp::Max: Out = std::fmax(X, LaneOf(1)); break;
      case BuiltinOp::Hypot: Out = std::hypot(X, LaneOf(1)); break;
      case BuiltinOp::Step: Out = LaneOf(1) < X ? 0.0 : 1.0; break;
      case BuiltinOp::Fdim: Out = std::fdim(X, LaneOf(1)); break;
      case BuiltinOp::Mul24:
        Out = static_cast<double>(toInt(X) * toInt(LaneOf(1)));
        break;
      case BuiltinOp::Rotate: {
        uint32_t V = static_cast<uint32_t>(toInt(X));
        uint32_t N = static_cast<uint32_t>(toInt(LaneOf(1))) & 31;
        Out = static_cast<double>((V << N) | (V >> ((32 - N) & 31)));
        break;
      }
      case BuiltinOp::Clamp:
        Out = std::fmin(std::fmax(X, LaneOf(1)), LaneOf(2));
        break;
      case BuiltinOp::Mix:
        Out = X + (LaneOf(1) - X) * LaneOf(2);
        break;
      case BuiltinOp::Fma:
      case BuiltinOp::Mad:
        Out = X * LaneOf(1) + LaneOf(2);
        break;
      case BuiltinOp::Mad24:
        Out = static_cast<double>(toInt(X) * toInt(LaneOf(1)) +
                                  toInt(LaneOf(2)));
        break;
      case BuiltinOp::Smoothstep: {
        double E0 = X, E1 = LaneOf(1), T = LaneOf(2);
        double U = (T - E0) / (E1 - E0);
        U = std::fmin(std::fmax(U, 0.0), 1.0);
        Out = U * U * (3.0 - 2.0 * U);
        break;
      }
      case BuiltinOp::Select: {
        // select(a, b, c): b where c is true.
        Out = LaneOf(2) != 0.0 ? LaneOf(1) : X;
        break;
      }
      default:
        fail(TrapKind::BadLaunch, "unhandled builtin in interpreter");
        return false;
      }
      R.Lanes[L] = Out;
    }
    S.Regs[I.Dst] = R;
    return true;
  }

  //===------------------------------------------------------------------===//
  // Work-group execution
  //===------------------------------------------------------------------===//

  void initItem(ItemState &S, size_t GidX, size_t GidY, size_t GidZ,
                size_t LidX, size_t LidY, size_t LidZ) {
    S.Regs.assign(K.RegisterCount, Value());
    S.Pc = 0;
    S.Done = false;
    S.Gid[0] = GidX;
    S.Gid[1] = GidY;
    S.Gid[2] = GidZ;
    S.Lid[0] = LidX;
    S.Lid[1] = LidY;
    S.Lid[2] = LidZ;
    // Reuse the private-buffer allocations across items/groups/launches;
    // assign() zeroes in place once the geometry matches.
    S.PrivBuffers.resize(K.PrivateBuffers.size());
    for (size_t BI = 0; BI < K.PrivateBuffers.size(); ++BI) {
      const PrivateBufferInfo &PB = K.PrivateBuffers[BI];
      S.PrivBuffers[BI].assign(
          static_cast<size_t>(PB.Elements) * PB.ElemWidth, 0.0);
    }
    for (const auto &[Reg, V] : ScalarPreloads)
      S.Regs[Reg] = V;
    S.PrevOp = -1;
  }

  /// Runs one item until barrier / halt / error.
  StepOutcome runUntilPause(ItemState &S, GroupContext &G) {
    if (ExecCode) {
#if CLGS_VM_COMPUTED_GOTO
      return runItemExecGoto(S, G);
#else
      return runItemExecSwitch(S, G);
#endif
    }
    for (;;) {
      StepOutcome O = step(S, G);
      if (O != StepOutcome::Continue)
        return O;
    }
  }

  bool runGroup(GroupContext &G) {
    size_t LX = Config.LocalSize[0], LY = Config.LocalSize[1],
           LZ = Config.LocalSize[2];
    size_t GroupItems = LX * LY * LZ;

    // Fresh local memory for this group, reusing prior allocations.
    G.LocalBuffers.resize(K.LocalBuffers.size());
    for (size_t BI = 0; BI < K.LocalBuffers.size(); ++BI) {
      const LocalBufferInfo &LB = K.LocalBuffers[BI];
      size_t Elems = LB.Elements > 0 ? static_cast<size_t>(LB.Elements)
                                     : LocalParamSizes[BI];
      if (Elems == 0)
        Elems = GroupItems; // Sensible default for driver-sized buffers.
      G.LocalBuffers[BI].assign(Elems * LB.ElemWidth, 0.0);
    }
    // Zero the per-group branch statistics in place.
    G.BranchSites.assign(BranchSiteCount, BranchStats());

    auto ItemCoords = [&](size_t Linear, size_t &LidX, size_t &LidY,
                          size_t &LidZ) {
      LidX = Linear % LX;
      LidY = (Linear / LX) % LY;
      LidZ = Linear / (LX * LY);
    };

    if (!K.HasBarrier) {
      // Fast path: one item at a time, a single reusable state.
      ItemState &S = Scratch.Single;
      for (size_t Linear = 0; Linear < GroupItems; ++Linear) {
        size_t LidX, LidY, LidZ;
        ItemCoords(Linear, LidX, LidY, LidZ);
        initItem(S, GroupId[0] * LX + LidX, GroupId[1] * LY + LidY,
                 GroupId[2] * LZ + LidZ, LidX, LidY, LidZ);
        StepOutcome O = runUntilPause(S, G);
        if (O == StepOutcome::Error)
          return false;
        if (O == StepOutcome::AtBarrier)
          return fail(TrapKind::BarrierDivergence,
                      "barrier reached by a kernel compiled without "
                      "barrier support");
        ++C.ItemsExecuted;
      }
      return true;
    }

    // Barrier path: phase-lockstep execution of all items in the group.
    std::vector<ItemState> &States = Scratch.States;
    States.resize(GroupItems);
    for (size_t Linear = 0; Linear < GroupItems; ++Linear) {
      size_t LidX, LidY, LidZ;
      ItemCoords(Linear, LidX, LidY, LidZ);
      initItem(States[Linear], GroupId[0] * LX + LidX,
               GroupId[1] * LY + LidY, GroupId[2] * LZ + LidZ, LidX, LidY,
               LidZ);
    }
    for (;;) {
      size_t AtBarrier = 0, Done = 0;
      for (ItemState &S : States) {
        if (S.Done) {
          ++Done;
          continue;
        }
        StepOutcome O = runUntilPause(S, G);
        if (O == StepOutcome::Error)
          return false;
        if (O == StepOutcome::AtBarrier)
          ++AtBarrier;
        else
          ++Done;
      }
      if (AtBarrier == 0) {
        C.ItemsExecuted += GroupItems;
        return true;
      }
      if (AtBarrier + Done != GroupItems || Done != 0) {
        // Some items passed the barrier while others finished: divergent
        // barrier, undefined behaviour in OpenCL, rejected here.
        if (Done != 0)
          return fail(TrapKind::BarrierDivergence,
                      "barrier divergence: not all work-items reached the "
                      "barrier");
      }
    }
  }

public:
  Result<ExecCounters> runImpl() {
    Start = std::chrono::steady_clock::now();
    // Injection sites for the launch path: an outright launch failure,
    // and a bounded stall that models a hung worker — long enough for an
    // armed watchdog to fire, short enough that unwatched runs still
    // terminate.
    if (CLGS_FAILPOINT("vm.launch"))
      return Result<ExecCounters>::error("injected fault at vm.launch",
                                         TrapKind::Injected);
    CLGS_FAILPOINT_STALL("vm.stall", 0);
    // Malformed or corrupted bytecode (out-of-range Aux operands, bad
    // widths, wild jump targets) classifies as BadLaunch here, in every
    // dispatch mode, instead of hitting an unhandled enum cast
    // mid-execution.
    std::string Malformed = verifyKernel(K);
    if (!Malformed.empty())
      return Result<ExecCounters>::error(
          "malformed kernel bytecode: " + Malformed, TrapKind::BadLaunch);
    if (!bindArgs())
      return Result<ExecCounters>::error(Error, ErrKind);
    if (Config.Profile)
      ++Config.Profile->Launches;
    WatchdogNext = Config.WatchdogMs != 0 ? 0 : UINT64_MAX;

    // Resolve conditional-branch sites to dense indices once per launch;
    // the dispatch loop then updates divergence stats with one indexed
    // load instead of a hash-map lookup per executed branch.
    BranchSiteOf.assign(K.Code.size(), -1);
    BranchSiteCount = 0;
    for (size_t Pc = 0; Pc < K.Code.size(); ++Pc)
      if (K.Code[Pc].Op == Opcode::Jz || K.Code[Pc].Op == Opcode::Jnz)
        BranchSiteOf[Pc] = BranchSiteCount++;

    // Resolve the dispatch strategy. Profiling launches always take the
    // reference switch loop: the per-instruction hook lives only there,
    // and opcode-pair profiles must see unfused sequences — a profile
    // collected under fused dispatch would stop ranking exactly the
    // pairs fusion consumes (a self-extinguishing profiler).
    DispatchMode Mode = Config.Dispatch;
    if (Config.Profile)
      Mode = DispatchMode::Switch;
    else if (Mode == DispatchMode::Auto)
      Mode = threadedDispatchAvailable() ? DispatchMode::ThreadedFused
                                         : DispatchMode::Switch;
    if (Mode != DispatchMode::Switch) {
      prepareExecProgram(K, Mode == DispatchMode::ThreadedFused,
                         Scratch.Prog);
      ExecCode = Scratch.Prog.Code.data();
    }

    for (int D = 0; D < 3; ++D) {
      if (Config.LocalSize[D] == 0 || Config.GlobalSize[D] == 0)
        return Result<ExecCounters>::error("empty NDRange",
                                           TrapKind::BadLaunch);
      if (Config.GlobalSize[D] % Config.LocalSize[D] != 0)
        return Result<ExecCounters>::error(
            "global size must be a multiple of local size",
            TrapKind::BadLaunch);
      GroupCount[D] = Config.GlobalSize[D] / Config.LocalSize[D];
    }
    size_t TotalGroups = GroupCount[0] * GroupCount[1] * GroupCount[2];
    size_t GroupItems =
        Config.LocalSize[0] * Config.LocalSize[1] * Config.LocalSize[2];
    C.ItemsTotal = TotalGroups * GroupItems;

    size_t GroupsToRun = std::min(TotalGroups, Config.MaxWorkGroups);
    size_t Stride = TotalGroups / GroupsToRun;
    if (Stride == 0)
      Stride = 1;

    double DivergenceSum = 0.0;
    uint64_t DivergenceBranches = 0;

    for (size_t GI = 0, Ran = 0; GI < TotalGroups && Ran < GroupsToRun;
         GI += Stride, ++Ran) {
      GroupId[0] = GI % GroupCount[0];
      GroupId[1] = (GI / GroupCount[0]) % GroupCount[1];
      GroupId[2] = GI / (GroupCount[0] * GroupCount[1]);
      GroupContext &G = Scratch.Group;
      if (!runGroup(G))
        return Result<ExecCounters>::error(Error, ErrKind);
      for (const BranchStats &BS : G.BranchSites) {
        if (BS.Total == 0)
          continue;
        double P = static_cast<double>(BS.Taken) /
                   static_cast<double>(BS.Total);
        DivergenceSum += 2.0 * std::min(P, 1.0 - P) *
                         static_cast<double>(BS.Total);
        DivergenceBranches += BS.Total;
      }
    }

    if (DivergenceBranches > 0)
      C.Divergence = DivergenceSum / static_cast<double>(DivergenceBranches);

    // Scale sampled counters up to the full NDRange.
    if (C.ItemsExecuted > 0 && C.ItemsExecuted < C.ItemsTotal) {
      double Scale = static_cast<double>(C.ItemsTotal) /
                     static_cast<double>(C.ItemsExecuted);
      auto ScaleUp = [Scale](uint64_t &X) {
        X = static_cast<uint64_t>(static_cast<double>(X) * Scale);
      };
      ScaleUp(C.Instructions);
      ScaleUp(C.ComputeOps);
      ScaleUp(C.MathCalls);
      ScaleUp(C.GlobalLoads);
      ScaleUp(C.GlobalStores);
      ScaleUp(C.CoalescedGlobal);
      ScaleUp(C.LocalAccesses);
      ScaleUp(C.PrivateAccesses);
      ScaleUp(C.Branches);
      ScaleUp(C.AtomicOps);
      ScaleUp(C.Barriers);
    }
    return C;
  }
};

// Instantiate the threaded exec loop twice from one handler-body
// template: the portable switch over ExtOp (always compiled, keeps the
// fallback from rotting) and the computed-goto loop when the extension
// is available.
#define CLGS_EXEC_USE_GOTO 0
#define CLGS_EXEC_FN runItemExecSwitch
#include "vm/InterpreterExecLoop.inc"
#undef CLGS_EXEC_FN
#undef CLGS_EXEC_USE_GOTO

#if CLGS_VM_COMPUTED_GOTO
#define CLGS_EXEC_USE_GOTO 1
#define CLGS_EXEC_FN runItemExecGoto
#include "vm/InterpreterExecLoop.inc"
#undef CLGS_EXEC_FN
#undef CLGS_EXEC_USE_GOTO
#endif

} // namespace

Result<ExecCounters> Engine::run() { return runImpl(); }

bool vm::threadedDispatchAvailable() { return CLGS_VM_COMPUTED_GOTO != 0; }

const char *vm::dispatchModeName(DispatchMode Mode) {
  switch (Mode) {
  case DispatchMode::Auto: return "auto";
  case DispatchMode::Switch: return "switch";
  case DispatchMode::Threaded: return "threaded";
  case DispatchMode::ThreadedFused: return "fused";
  }
  return "?";
}

std::optional<DispatchMode> vm::parseDispatchMode(const std::string &Name) {
  if (Name == "auto")
    return DispatchMode::Auto;
  if (Name == "switch")
    return DispatchMode::Switch;
  if (Name == "threaded")
    return DispatchMode::Threaded;
  if (Name == "fused" || Name == "threaded-fused")
    return DispatchMode::ThreadedFused;
  return std::nullopt;
}

Result<ExecCounters> vm::launchKernel(const CompiledKernel &Kernel,
                                      const std::vector<KernelArg> &Args,
                                      std::vector<BufferData> &Buffers,
                                      const LaunchConfig &Config) {
  // Per-thread scratch persists across launches: register files, private
  // and local buffer storage are recycled, and concurrent launches from
  // the synthesis thread pool each get their own arena.
  static thread_local ExecScratch Scratch;
  Engine E(Kernel, Args, Buffers, Config, Scratch);
  return E.run();
}

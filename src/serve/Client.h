//===- serve/Client.h - clgen-serve blocking client --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the clgen-serve daemon: connect to the
/// Unix-domain socket, exchange serve/Protocol.h frames, return typed
/// responses. Used by the `clgen-serve` CLI's client subcommands and by
/// the serve tests (both the in-process thread clients and the fork()ed
/// cross-process ones).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SERVE_CLIENT_H
#define CLGEN_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Result.h"

#include <string>

namespace clgen {
namespace serve {

/// One connection to a serve daemon. Move-only; the destructor closes.
class Client {
public:
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client();

  /// Connects to the daemon's socket. Fails when the socket does not
  /// exist or nothing is listening.
  static Result<Client> connect(const std::string &SocketPath);

  /// Round-trips a ping (daemon pid + protocol version).
  Result<PingResponse> ping();

  /// Submits a synthesis/measurement request and blocks for the
  /// result. Server-side validation failures (e.g. a zero target)
  /// come back as error results carrying the daemon's diagnostic.
  Result<SynthesizeResponse> synthesize(const SynthesizeRequest &Req);

  /// Fetches the daemon's stats text ("key value" lines).
  Result<std::string> stats();

  /// Asks the daemon to drain and exit; returns once the daemon has
  /// acknowledged (in-flight requests still finish before it exits).
  Status shutdown();

private:
  explicit Client(int Fd) : Fd(Fd) {}

  /// Sends \p Frame and reads + parses exactly one response frame,
  /// checking it against \p Expect (ErrorResponse is folded into an
  /// error Result carrying the server's diagnostic).
  Result<Message> roundTrip(const std::vector<uint8_t> &Frame,
                            MessageType Expect);

  int Fd = -1;
};

} // namespace serve
} // namespace clgen

#endif // CLGEN_SERVE_CLIENT_H

//===- model/NGramModel.cpp - Backoff n-gram language model -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/NGramModel.h"

#include <cassert>

using namespace clgen;
using namespace clgen::model;

void NGramModel::train(const std::vector<std::string> &Entries) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  Counts.clear();
  for (const std::string &E : Entries)
    addSequence(E);
  reset();
}

void NGramModel::addSequence(const std::string &Entry) {
  // Token stream: entry characters followed by the sentinel. Contexts are
  // built over raw characters; the sentinel uses '\0' which cannot occur
  // inside entries.
  std::string Stream = Entry;
  Stream.push_back('\0');

  int ContextLen = Opts.Order - 1;
  for (size_t I = 0; I < Stream.size(); ++I) {
    int NextId = Stream[I] == '\0' ? Vocabulary::EndOfText
                                   : Vocab.idOf(Stream[I]);
    // All context suffixes ending just before position I.
    for (int L = 0; L <= ContextLen; ++L) {
      if (static_cast<size_t>(L) > I)
        break;
      std::string Ctx = Stream.substr(I - L, L);
      Counts[Ctx][NextId] += 1;
    }
  }
}

void NGramModel::reset() { Context.clear(); }

void NGramModel::observe(int TokenId) {
  Context.push_back(TokenId == Vocabulary::EndOfText
                        ? '\0'
                        : Vocab.charOf(TokenId));
  size_t MaxLen = static_cast<size_t>(Opts.Order - 1);
  if (Context.size() > MaxLen)
    Context.erase(0, Context.size() - MaxLen);
}

std::vector<double> NGramModel::nextDistribution() {
  size_t V = Vocab.size();
  std::vector<double> Dist(V, 0.0);

  // Walk from the longest available context down to the unigram level,
  // taking the first context with any observations, discounted by
  // BackoffAlpha per skipped level.
  double Scale = 1.0;
  for (size_t Skip = 0; Skip <= Context.size(); ++Skip) {
    std::string Ctx = Context.substr(Skip);
    auto It = Counts.find(Ctx);
    if (It == Counts.end() || It->second.empty()) {
      Scale *= Opts.BackoffAlpha;
      continue;
    }
    double Total = 0.0;
    for (const auto &[Id, Count] : It->second)
      Total += Count;
    for (const auto &[Id, Count] : It->second)
      Dist[Id] += Scale * static_cast<double>(Count) / Total;
    break;
  }

  // Unigram smoothing floor so every token has nonzero probability.
  double Floor = Opts.UnigramSmoothing / static_cast<double>(V);
  double Sum = 0.0;
  for (double &P : Dist) {
    P += Floor;
    Sum += P;
  }
  for (double &P : Dist)
    P /= Sum;
  return Dist;
}

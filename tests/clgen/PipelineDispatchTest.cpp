//===- tests/clgen/PipelineDispatchTest.cpp - --dispatch byte-identity --------===//
//
// Pipeline-level face of the VM's trap-parity contract: the measurement
// pipeline must produce BYTE-identical measurements whichever dispatch
// strategy (--dispatch switch/threaded/fused/auto) the VM runs, at every
// measurement worker count, cold-cache and warm-cache. That identity is
// what licenses excluding DispatchMode from the measurement cache key:
// results cached under one mode are served under any other, which the
// warm-cache test pins by demanding 100% hits across a mode change.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_dispatch_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

/// Canonical byte image of a measurement batch; two batches are "the
/// same result" iff these bytes are equal.
std::vector<uint8_t>
measurementBytes(const std::vector<Result<runtime::Measurement>> &Ms) {
  store::ArchiveWriter W(store::ArchiveKind::Synthesis);
  W.writeU64(Ms.size());
  for (const auto &M : Ms) {
    W.writeBool(M.ok());
    if (M.ok())
      store::serializeMeasurement(W, M.get());
    else
      W.writeString(M.errorMessage());
  }
  return W.finalize();
}

struct Workload {
  std::vector<vm::CompiledKernel> Kernels;
  runtime::DriverOptions Driver;
  runtime::Platform P = runtime::amdPlatform();
};

Workload makeWorkload() {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  ClgenPipeline Pipeline = ClgenPipeline::train(Files, POpts);
  SynthesisOptions SOpts;
  SOpts.TargetKernels = 4;
  SOpts.MaxAttempts = 6000;
  SynthesisResult SR = Pipeline.synthesize(SOpts);

  Workload W;
  for (auto &K : SR.Kernels)
    W.Kernels.push_back(K.Kernel);
  EXPECT_GT(W.Kernels.size(), 0u);
  W.Driver.GlobalSize = 2048;
  return W;
}

} // namespace

TEST(PipelineDispatchTest, ByteIdenticalAcrossModesAndWorkerCounts) {
  Workload W = makeWorkload();
  // Reference: the portable switch loop, serial.
  W.Driver.Dispatch = vm::DispatchMode::Switch;
  auto RefBytes =
      measurementBytes(runtime::runBenchmarkBatch(W.Kernels, W.P, W.Driver, 1));

  for (vm::DispatchMode Mode :
       {vm::DispatchMode::Threaded, vm::DispatchMode::ThreadedFused,
        vm::DispatchMode::Auto, vm::DispatchMode::Switch}) {
    for (unsigned Workers : {1u, 2u}) {
      SCOPED_TRACE(std::string("dispatch ") + vm::dispatchModeName(Mode) +
                   ", workers " + std::to_string(Workers));
      W.Driver.Dispatch = Mode;
      auto Out = runtime::runBenchmarkBatch(W.Kernels, W.P, W.Driver, Workers);
      EXPECT_EQ(measurementBytes(Out), RefBytes)
          << "measurements diverged from the switch reference";
    }
  }
}

TEST(PipelineDispatchTest, DispatchExcludedFromCacheKey) {
  Workload W = makeWorkload();
  ScratchDir Dir("cache_key");

  // Cold cache under switch dispatch: everything misses and the store
  // comes out populated.
  W.Driver.Dispatch = vm::DispatchMode::Switch;
  store::ResultCache Cold(Dir.str());
  runtime::BatchCacheStats ColdStats;
  auto ColdOut =
      runtime::runBenchmarkBatch(W.Kernels, W.P, W.Driver, 1, Cold, &ColdStats);
  auto RefBytes = measurementBytes(ColdOut);
  EXPECT_EQ(ColdStats.Hits, 0u);
  size_t Successes = 0;
  for (const auto &M : ColdOut)
    Successes += M.ok() ? 1 : 0;
  EXPECT_GT(Successes, 0u);

  // Warm cache under FUSED dispatch (fresh instance, so hits come off
  // disk): the mode is excluded from the key recipe, so every
  // measurement cached under switch must be served verbatim — and the
  // output must still be byte-identical, which is only sound because
  // the modes measure identically in the first place.
  W.Driver.Dispatch = vm::DispatchMode::ThreadedFused;
  store::ResultCache Warm(Dir.str());
  runtime::BatchCacheStats WarmStats;
  auto WarmOut =
      runtime::runBenchmarkBatch(W.Kernels, W.P, W.Driver, 2, Warm, &WarmStats);
  EXPECT_EQ(WarmStats.Hits, Successes)
      << "a dispatch-mode change must not invalidate cached measurements";
  EXPECT_EQ(measurementBytes(WarmOut), RefBytes);
}

TEST(PipelineDispatchTest, StreamingPipelineHonorsDispatch) {
  // The streaming engine threads DriverOptions::Dispatch through to its
  // measurement workers; fused streaming output must equal the phased
  // switch-dispatch reference byte for byte.
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  ClgenPipeline Pipeline = ClgenPipeline::train(Files, POpts);

  SynthesisOptions SOpts;
  SOpts.TargetKernels = 3;
  SOpts.MaxAttempts = 6000;
  runtime::DriverOptions Driver;
  Driver.GlobalSize = 2048;
  runtime::Platform P = runtime::amdPlatform();

  SynthesisResult SR = Pipeline.synthesize(SOpts);
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : SR.Kernels)
    Kernels.push_back(K.Kernel);
  Driver.Dispatch = vm::DispatchMode::Switch;
  auto RefBytes =
      measurementBytes(runtime::runBenchmarkBatch(Kernels, P, Driver, 1));

  StreamingOptions Opts;
  Opts.Synthesis = SOpts;
  Opts.Driver = Driver;
  Opts.Driver.Dispatch = vm::DispatchMode::ThreadedFused;
  Opts.MeasureWorkers = 2;
  StreamingResult Out = Pipeline.synthesizeAndMeasure(P, Opts);
  EXPECT_EQ(measurementBytes(Out.Measurements), RefBytes);
}

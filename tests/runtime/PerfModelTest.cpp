//===- tests/runtime/PerfModelTest.cpp - device/perf model tests --------------===//

#include "runtime/PerfModel.h"

#include "runtime/Device.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

namespace {

ExecCounters counters(uint64_t Items, uint64_t ComputePerItem,
                      uint64_t CoalescedPerItem,
                      uint64_t UncoalescedPerItem) {
  ExecCounters C;
  C.ItemsTotal = Items;
  C.ItemsExecuted = Items;
  C.ComputeOps = Items * ComputePerItem;
  C.GlobalLoads = Items * (CoalescedPerItem + UncoalescedPerItem);
  C.CoalescedGlobal = Items * CoalescedPerItem;
  return C;
}

} // namespace

TEST(DeviceModelTest, Table4Platforms) {
  EXPECT_EQ(intelI7_3820().Kind, DeviceKind::Cpu);
  EXPECT_EQ(amdTahiti7970().Kind, DeviceKind::Gpu);
  EXPECT_EQ(nvidiaGtx970().Kind, DeviceKind::Gpu);
  EXPECT_GT(amdTahiti7970().ParallelLanes, intelI7_3820().ParallelLanes);
  // The CPU is zero-copy; the GPUs pay PCIe.
  EXPECT_EQ(intelI7_3820().TransferGBPerSec, 0.0);
  EXPECT_GT(nvidiaGtx970().TransferGBPerSec,
            amdTahiti7970().TransferGBPerSec);
}

TEST(PerfModelTest, MoreWorkTakesLonger) {
  DeviceModel Cpu = intelI7_3820();
  double T1 = estimateComputeTime(Cpu, counters(1024, 10, 2, 0));
  double T2 = estimateComputeTime(Cpu, counters(1024, 100, 2, 0));
  EXPECT_GT(T2, T1);
}

TEST(PerfModelTest, GpuWinsComputeHeavyParallel) {
  // Large parallel compute-bound workload: GPU must win on raw compute.
  ExecCounters C = counters(1 << 20, 400, 2, 0);
  double CpuT = estimateComputeTime(intelI7_3820(), C);
  double GpuT = estimateComputeTime(amdTahiti7970(), C);
  EXPECT_LT(GpuT, CpuT);
}

TEST(PerfModelTest, TransferCanFlipTheDecision) {
  // Streaming kernel: tiny compute, large transfer. The GPU compute win
  // is wiped out by PCIe cost.
  ExecCounters C = counters(1 << 20, 6, 3, 0);
  TransferProfile Transfer;
  Transfer.BytesIn = 8ull << 20;
  Transfer.BytesOut = 4ull << 20;
  double CpuT = estimateRuntime(intelI7_3820(), C, Transfer);
  double GpuT = estimateRuntime(amdTahiti7970(), C, Transfer);
  EXPECT_LT(CpuT, GpuT);
  // Without the transfer the GPU would have won.
  EXPECT_LT(estimateComputeTime(amdTahiti7970(), C),
            estimateComputeTime(intelI7_3820(), C));
}

TEST(PerfModelTest, UncoalescedHurtsGpuMore) {
  ExecCounters Coalesced = counters(1 << 18, 10, 4, 0);
  ExecCounters Strided = counters(1 << 18, 10, 0, 4);
  double GpuPenalty = estimateComputeTime(amdTahiti7970(), Strided) /
                      estimateComputeTime(amdTahiti7970(), Coalesced);
  double CpuPenalty = estimateComputeTime(intelI7_3820(), Strided) /
                      estimateComputeTime(intelI7_3820(), Coalesced);
  EXPECT_GT(GpuPenalty, CpuPenalty);
}

TEST(PerfModelTest, DivergencePenalisesGpuOnly) {
  ExecCounters C = counters(1 << 18, 50, 2, 0);
  C.Branches = C.ItemsTotal * 4;
  ExecCounters Divergent = C;
  Divergent.Divergence = 1.0;
  EXPECT_GT(estimateComputeTime(amdTahiti7970(), Divergent),
            2.0 * estimateComputeTime(amdTahiti7970(), C));
  EXPECT_DOUBLE_EQ(estimateComputeTime(intelI7_3820(), Divergent),
                   estimateComputeTime(intelI7_3820(), C));
}

TEST(PerfModelTest, SmallNDRangeUnderusesGpu) {
  // 128 items cannot fill 2048 lanes: per-item time rises sharply.
  ExecCounters Small = counters(128, 100, 2, 0);
  ExecCounters Large = counters(1 << 20, 100, 2, 0);
  double SmallPerItem = estimateComputeTime(amdTahiti7970(), Small) / 128;
  double LargePerItem =
      estimateComputeTime(amdTahiti7970(), Large) / (1 << 20);
  EXPECT_GT(SmallPerItem, 10.0 * LargePerItem);
}

TEST(PerfModelTest, LaunchOverheadIncluded) {
  ExecCounters C = counters(1, 1, 0, 0);
  double T = estimateRuntime(amdTahiti7970(), C, {});
  EXPECT_GE(T, amdTahiti7970().LaunchOverheadUs * 1e-6);
}

TEST(PerfModelTest, LocalMemoryCheapOnGpu) {
  ExecCounters C = counters(1 << 18, 10, 2, 0);
  ExecCounters WithLocal = C;
  WithLocal.LocalAccesses = C.ItemsTotal * 8;
  double GpuExtra = estimateComputeTime(amdTahiti7970(), WithLocal) -
                    estimateComputeTime(amdTahiti7970(), C);
  double CpuExtra = estimateComputeTime(intelI7_3820(), WithLocal) -
                    estimateComputeTime(intelI7_3820(), C);
  // Per-access local cost is lower on the GPU even before dividing by
  // the (much larger) parallelism.
  EXPECT_LT(GpuExtra * amdTahiti7970().ParallelLanes /
                intelI7_3820().ParallelLanes,
            CpuExtra * 100.0);
}


//===- bench/feature_collisions.cpp - Listing 2: feature aliasing -------------===//
//
// Regenerates the section 8.2 discovery that motivated the extended
// model: CLgen kernels that are indistinguishable from a benchmark in
// the Grewe et al. feature space (identical static feature values) yet
// have different runtime behaviour — the paper's Listing 2 example
// collides with AMD's Fast Walsh-Hadamard transform. A static branch
// count separates them.
//
// Also serves as the ablation bench for the branch feature (DESIGN.md
// section 5).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "features/Features.h"

#include <map>

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s", sectionBanner("Listing 2: feature-space collisions "
                                  "exposed by synthetic benchmarks")
                        .c_str());

  auto P = runtime::amdPlatform();
  auto Catalogue = suites::buildCatalogue();
  auto BenchObs = suites::measureCatalogue(Catalogue, P);

  auto Pipeline = trainedPipeline();
  auto Synthetic = measureSynthetic(Pipeline, 300, P);
  std::printf("benchmark observations: %zu, synthetic: %zu\n\n",
              BenchObs.size(), Synthetic.size());

  // Index benchmark observations by their Table-2a static key (without
  // the branch feature).
  std::map<std::array<int64_t, 4>, std::vector<size_t>> ByKey;
  for (size_t I = 0; I < BenchObs.size(); ++I)
    ByKey[BenchObs[I].Raw.Static.keyNoBranch()].push_back(I);

  size_t Collisions = 0, BehaviourDiffers = 0, BranchSeparates = 0;
  bool PrintedExample = false;
  for (const auto &S : Synthetic) {
    auto It = ByKey.find(S.Raw.Static.keyNoBranch());
    if (It == ByKey.end())
      continue;
    for (size_t BI : It->second) {
      const auto &B = BenchObs[BI];
      ++Collisions;
      if (B.label() == S.label())
        continue;
      ++BehaviourDiffers;
      if (B.Raw.Static.Branches != S.Raw.Static.Branches)
        ++BranchSeparates;
      if (!PrintedExample) {
        PrintedExample = true;
        std::printf("example collision:\n");
        std::printf("  benchmark %s/%s [%s]: comp=%.0f mem=%.0f "
                    "localmem=%.0f coalesced=%.0f branches=%.0f -> best "
                    "device %s\n",
                    B.Suite.c_str(), B.Benchmark.c_str(),
                    B.Kernel.c_str(), B.Raw.Static.Comp, B.Raw.Static.Mem,
                    B.Raw.Static.LocalMem, B.Raw.Static.Coalesced,
                    B.Raw.Static.Branches,
                    B.label() == 1 ? "GPU" : "CPU");
        std::printf("  CLgen kernel %-18s: identical Table-2a features, "
                    "branches=%.0f -> best device %s\n\n",
                    S.Kernel.c_str(), S.Raw.Static.Branches,
                    S.label() == 1 ? "GPU" : "CPU");
      }
    }
  }

  TextTable T;
  T.setHeader({"metric", "count"});
  T.addRow({"synthetic kernels aliasing a benchmark (Table 2a features)",
            std::to_string(Collisions)});
  T.addRow({"... with a different optimal mapping",
            std::to_string(BehaviourDiffers)});
  T.addRow({"... separated by the static branch-count feature",
            std::to_string(BranchSeparates)});
  std::printf("%s", T.render().c_str());

  std::printf("\nConclusion (paper section 8.2): features that cannot "
              "discriminate programs\nwith different behaviour limit the "
              "model; the fine feature-space coverage\nof synthetic "
              "benchmarks surfaces such aliasing automatically, and a\n"
              "branching feature resolves it.\n");
  return 0;
}

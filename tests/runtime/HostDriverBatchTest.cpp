//===- tests/runtime/HostDriverBatchTest.cpp - batched driver tests ----------===//

#include "runtime/HostDriver.h"

#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::runtime;

namespace {

std::vector<vm::CompiledKernel> sampleBatch() {
  const char *Sources[] = {
      "__kernel void a(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] * 2.0f + 1.0f; }\n"
      "}\n",
      "__kernel void b(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] + 3.0f; }\n"
      "}\n",
      "__kernel void c(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] * x[i]; }\n"
      "}\n",
  };
  std::vector<vm::CompiledKernel> Kernels;
  for (const char *S : Sources)
    Kernels.push_back(vm::compileFirstKernel(S).take());
  return Kernels;
}

} // namespace

TEST(HostDriverBatchTest, MeasuresEveryKernel) {
  auto Kernels = sampleBatch();
  DriverOptions Opts;
  Opts.GlobalSize = 1024;
  auto Results = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 2);
  ASSERT_EQ(Results.size(), Kernels.size());
  for (const auto &R : Results) {
    ASSERT_TRUE(R.ok()) << R.errorMessage();
    EXPECT_GT(R.get().Counters.Instructions, 0u);
    EXPECT_GT(R.get().CpuTime, 0.0);
  }
}

TEST(HostDriverBatchTest, DeterministicAcrossWorkerCounts) {
  auto Kernels = sampleBatch();
  DriverOptions Opts;
  Opts.GlobalSize = 512;
  auto Serial = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 1);
  auto Parallel = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 4);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    ASSERT_TRUE(Serial[I].ok());
    ASSERT_TRUE(Parallel[I].ok());
    EXPECT_EQ(Serial[I].get().Counters.Instructions,
              Parallel[I].get().Counters.Instructions);
    EXPECT_DOUBLE_EQ(Serial[I].get().CpuTime, Parallel[I].get().CpuTime);
    EXPECT_DOUBLE_EQ(Serial[I].get().GpuTime, Parallel[I].get().GpuTime);
  }
}

//===- serve/Server.cpp - clgen-serve pipeline daemon ---------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "githubsim/GithubSim.h"
#include "runtime/Device.h"
#include "store/Archive.h"
#include "store/Lifecycle.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace clgen;
using namespace clgen::serve;

uint64_t serve::requestKey(const SynthesizeRequest &Req) {
  // Semantic fields only (the same discipline as store cache keys):
  // scheduling is server policy and must not split coalescable
  // requests.
  uint64_t K = store::fnv1a64(&Req.TargetKernels, sizeof(Req.TargetKernels));
  K = store::fnv1a64(&Req.Seed, sizeof(Req.Seed), K);
  uint64_t TempBits;
  static_assert(sizeof(TempBits) == sizeof(Req.Temperature));
  std::memcpy(&TempBits, &Req.Temperature, sizeof(TempBits));
  return store::fnv1a64(&TempBits, sizeof(TempBits), K);
}

Server::Server(ServerConfig Config) : Cfg(std::move(Config)) {}

Server::~Server() {
  if (Started.load() && !Drained.load()) {
    requestDrain();
    wait();
  }
}

Status Server::start() {
  if (Cfg.SocketPath.empty() || Cfg.StoreDir.empty())
    return Status::error("server config requires a socket path and a "
                         "store directory");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Cfg.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error("socket path too long for sun_path (" +
                         std::to_string(sizeof(Addr.sun_path) - 1) +
                         " bytes max): " + Cfg.SocketPath);
  std::memcpy(Addr.sun_path, Cfg.SocketPath.c_str(),
              Cfg.SocketPath.size() + 1);

  if (::pipe(WakePipe) != 0)
    return Status::error(std::string("cannot create drain pipe: ") +
                         std::strerror(errno));

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(std::string("cannot create socket: ") +
                         std::strerror(errno));
  ::unlink(Cfg.SocketPath.c_str()); // Replace a stale socket file.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return Status::error("cannot bind " + Cfg.SocketPath + ": " +
                         std::strerror(errno));
  if (::listen(ListenFd, 64) != 0)
    return Status::error("cannot listen on " + Cfg.SocketPath + ": " +
                         std::strerror(errno));

  Cache = std::make_unique<store::ResultCache>(Cfg.StoreDir + "/results");
  Ledger = std::make_unique<store::FailureLedger>(Cfg.StoreDir + "/failures");

  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  if (Cfg.SweepIntervalMs > 0)
    SweeperThread = std::thread([this] { sweeperLoop(); });
  return Status();
}

void Server::requestDrain() {
  // Async-signal-safe by design: one write(2), no locks, no allocation.
  // The accept loop owns all actual teardown.
  if (WakePipe[1] >= 0) {
    char B = 'q';
    ssize_t Ignored = ::write(WakePipe[1], &B, 1);
    (void)Ignored;
  }
}

void Server::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents != 0)
      break; // Drain requested.
    if ((Fds[0].revents & POLLIN) == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    reapConnections(/*All=*/false); // Bound growth on a busy daemon.
    std::lock_guard<std::mutex> Guard(ConnMutex);
    auto C = std::make_unique<Connection>();
    C->Fd = Fd;
    Connection *Raw = C.get();
    Connections.push_back(std::move(C));
    Raw->Worker = std::thread([this, Raw] {
      serveConnection(Raw->Fd);
      Raw->Done.store(true);
    });
  }

  Draining.store(true);
  ::close(ListenFd);
  ListenFd = -1;

  // Half-close every connection: a reader blocked between requests
  // wakes with EOF and exits; a connection mid-request finishes its
  // computation and still writes the response (writes stay open).
  {
    std::lock_guard<std::mutex> Guard(ConnMutex);
    for (auto &C : Connections)
      ::shutdown(C->Fd, SHUT_RD);
  }
}

void Server::reapConnections(bool All) {
  std::lock_guard<std::mutex> Guard(ConnMutex);
  for (auto It = Connections.begin(); It != Connections.end();) {
    Connection &C = **It;
    if (!All && !C.Done.load()) {
      ++It;
      continue;
    }
    if (C.Worker.joinable())
      C.Worker.join();
    ::close(C.Fd);
    It = Connections.erase(It);
  }
}

void Server::serveConnection(int Fd) {
  for (;;) {
    Result<std::vector<uint8_t>> FrameBytes = readFrame(Fd);
    if (!FrameBytes.ok())
      break; // EOF, drain half-close, or unframeable garbage.
    Result<Message> Parsed = parseFrame(FrameBytes.get());
    if (!Parsed.ok()) {
      ++InvalidRequests;
      // A corrupt frame leaves the stream unsynchronized: answer with
      // the diagnostic, then drop the connection.
      (void)writeFrame(Fd, encodeErrorResponse(Parsed.errorMessage()));
      break;
    }
    ++RequestsServed;
    const Message &M = Parsed.get();
    std::vector<uint8_t> Response;
    bool DrainAfter = false;
    switch (M.Type) {
    case MessageType::PingRequest: {
      PingResponse P;
      P.Pid = static_cast<uint64_t>(::getpid());
      Response = encodePingResponse(P);
      break;
    }
    case MessageType::StatsRequest:
      Response = encodeStatsResponse(renderStats());
      break;
    case MessageType::ShutdownRequest:
      Response = encodeShutdownResponse();
      DrainAfter = true;
      break;
    case MessageType::SynthesizeRequest: {
      Result<SynthesizeResponse> R = synthesize(M.Synth);
      Response = R.ok() ? encodeSynthesizeResponse(R.get())
                        : encodeErrorResponse(R.errorMessage());
      break;
    }
    default:
      ++InvalidRequests;
      Response = encodeErrorResponse("unexpected message type on the "
                                     "request stream");
      break;
    }
    if (!writeFrame(Fd, Response).ok())
      break;
    if (DrainAfter)
      requestDrain();
  }
  // Release the peer but keep the descriptor reserved: the accept loop
  // closes it on reap, so a drain-side shutdown() can never hit a
  // reused fd.
  ::shutdown(Fd, SHUT_RDWR);
}

Result<core::ClgenPipeline *> Server::ensureModel(bool &TrainedNow) {
  TrainedNow = false;
  std::lock_guard<std::mutex> Guard(ModelMutex);
  if (Pipeline)
    return Pipeline.get();
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = Cfg.FileCount;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 14;
  core::TrainOrLoadInfo Info;
  auto Loaded =
      core::ClgenPipeline::trainOrLoad(Cfg.StoreDir, Files, POpts, &Info);
  if (!Loaded.ok())
    return Result<core::ClgenPipeline *>::error(Loaded.errorMessage());
  Pipeline = std::make_unique<core::ClgenPipeline>(Loaded.take());
  TrainedNow = !Info.LoadedModel;
  if (TrainedNow)
    ++TrainedModels;
  return Pipeline.get();
}

Result<SynthesizeResponse>
Server::synthesize(const SynthesizeRequest &Req) {
  Status Valid = validateRequest(Req);
  if (!Valid.ok()) {
    ++InvalidRequests;
    return Result<SynthesizeResponse>::error(Valid.errorMessage());
  }
  ++SynthRequests;
  ++ActiveRequests;
  CLGS_COUNT("clgen.serve.synth_requests");
  bool WasLeader = false;
  Result<SynthesizeResponse> R = Flights.run(
      requestKey(Req), [&] { return runFlight(Req); }, &WasLeader);
  if (!WasLeader)
    CLGS_COUNT("clgen.serve.coalesced");
  --ActiveRequests;
  return R;
}

Result<SynthesizeResponse>
Server::runFlight(const SynthesizeRequest &Req) {
  bool TrainedNow = false;
  Result<core::ClgenPipeline *> P = ensureModel(TrainedNow);
  if (!P.ok())
    return Result<SynthesizeResponse>::error("model initialization failed: " +
                                             P.errorMessage());

  core::StreamingOptions SOpts;
  SOpts.Synthesis.TargetKernels = static_cast<size_t>(Req.TargetKernels);
  SOpts.Synthesis.Seed = Req.Seed;
  SOpts.Synthesis.Sampling.Temperature = Req.Temperature;
  SOpts.Synthesis.Workers = 1;
  SOpts.Driver.GlobalSize = 16384;
  SOpts.MeasureWorkers = Cfg.MeasureWorkers;
  SOpts.QueueCapacity = Cfg.QueueCapacity;
  SOpts.Cache = Cache.get();
  SOpts.Ledger = Ledger.get();

  core::StreamingWarmInfo Warm;
  core::StreamingResult Out = P.get()->synthesizeAndMeasureOrLoad(
      Cfg.StoreDir, runtime::amdPlatform(), SOpts, &Warm);
  if (Warm.Warm) {
    ++WarmLoads;
    CLGS_COUNT("clgen.serve.warm_loads");
  } else {
    ++ColdComputes;
    CLGS_COUNT("clgen.serve.cold_computes");
  }

  SynthesizeResponse Resp;
  Resp.WarmKernels = Warm.Warm;
  Resp.TrainedModels = TrainedNow ? 1 : 0;
  // Per-flight work provenance: a warm flight drew zero samples (the
  // producer was an archive reader) and measured only cache misses.
  Resp.SampleAttempts = Warm.Warm ? 0 : Out.Stats.Attempts;
  Resp.MeasuredKernels = Out.CacheStats.Misses;
  Resp.CacheHits = Out.CacheStats.Hits;
  Resp.LedgerHits = Out.CacheStats.LedgerHits;
  uint64_t Digest = store::fnv1a64(nullptr, 0);
  Resp.Sources.reserve(Out.Kernels.size());
  for (const core::SynthesizedKernel &K : Out.Kernels) {
    Digest = store::fnv1a64(K.Source.data(), K.Source.size(), Digest);
    Resp.Sources.push_back(K.Source);
  }
  Resp.KernelSetDigest = Digest;
  Resp.Measurements.reserve(Out.Measurements.size());
  for (const Result<runtime::Measurement> &M : Out.Measurements) {
    MeasurementRow Row;
    Row.Ok = M.ok();
    if (M.ok()) {
      Row.CpuTime = M.get().CpuTime;
      Row.GpuTime = M.get().GpuTime;
    } else {
      Row.Error = M.errorMessage();
    }
    Resp.Measurements.push_back(std::move(Row));
  }
  return Resp;
}

void Server::sweeperLoop() {
  std::unique_lock<std::mutex> Lock(SweepMutex);
  while (!Draining.load()) {
    SweepCv.wait_for(Lock,
                     std::chrono::milliseconds(Cfg.SweepIntervalMs));
    if (Draining.load())
      break;
    store::SweepPolicy Policy;
    Policy.MaxBytes = Cfg.SweepBudgetBytes;
    auto Report = store::sweep(Cfg.StoreDir, Policy);
    if (Report.ok()) {
      ++Sweeps;
      SweepEvictedBytes += Report.get().EvictedBytes;
      CLGS_COUNT("clgen.serve.sweeps");
    }
  }
}

void Server::wait() {
  if (!Started.load() || Drained.load())
    return;
  if (AcceptThread.joinable())
    AcceptThread.join();
  // Draining is set by the accept loop before it exits; wake and stop
  // the sweeper, then let every in-flight request finish and answer.
  SweepCv.notify_all();
  if (SweeperThread.joinable())
    SweeperThread.join();
  reapConnections(/*All=*/true);
  ::unlink(Cfg.SocketPath.c_str());
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
  WakePipe[0] = WakePipe[1] = -1;

  // Flush telemetry. Best-effort: drain completes even when a write
  // fails (the daemon is exiting either way).
  auto WriteFile = [](const std::string &Path, const std::string &Body) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (!F)
      return;
    (void)std::fwrite(Body.data(), 1, Body.size(), F);
    (void)std::fclose(F);
  };
  if (!Cfg.TraceOut.empty()) {
    support::Trace::stop();
    WriteFile(Cfg.TraceOut, support::Trace::renderJson());
  }
  if (!Cfg.MetricsOut.empty())
    WriteFile(Cfg.MetricsOut, support::MetricsRegistry::renderText({}));
  Drained.store(true);
}

ServerStats Server::stats() const {
  ServerStats S;
  S.RequestsServed = RequestsServed.load();
  S.SynthRequests = SynthRequests.load();
  S.InvalidRequests = InvalidRequests.load();
  S.ColdComputes = ColdComputes.load();
  S.WarmLoads = WarmLoads.load();
  S.CoalescedRequests = Flights.followers();
  S.TrainedModels = TrainedModels.load();
  S.Sweeps = Sweeps.load();
  S.SweepEvictedBytes = SweepEvictedBytes.load();
  S.ActiveRequests = ActiveRequests.load();
  S.Draining = Draining.load();
  return S;
}

std::string Server::renderStats() const {
  ServerStats S = stats();
  std::ostringstream Os;
  Os << "requests_served " << S.RequestsServed << "\n"
     << "synth_requests " << S.SynthRequests << "\n"
     << "invalid_requests " << S.InvalidRequests << "\n"
     << "cold_computes " << S.ColdComputes << "\n"
     << "warm_loads " << S.WarmLoads << "\n"
     << "coalesced_requests " << S.CoalescedRequests << "\n"
     << "trained_models " << S.TrainedModels << "\n"
     << "sweeps " << S.Sweeps << "\n"
     << "sweep_evicted_bytes " << S.SweepEvictedBytes << "\n"
     << "active_requests " << S.ActiveRequests << "\n"
     << "draining " << (S.Draining ? 1 : 0) << "\n";
  return Os.str();
}

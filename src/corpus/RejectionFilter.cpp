//===- corpus/RejectionFilter.cpp - Compile-or-discard filter -----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/RejectionFilter.h"

#include "corpus/ShimHeader.h"
#include "ocl/Parser.h"
#include "ocl/Preprocessor.h"
#include "ocl/Sema.h"
#include "vm/Compiler.h"

using namespace clgen;
using namespace clgen::corpus;

const char *corpus::rejectionReasonName(RejectionReason R) {
  switch (R) {
  case RejectionReason::None: return "accepted";
  case RejectionReason::Preprocessor: return "preprocessor error";
  case RejectionReason::Syntax: return "syntax error";
  case RejectionReason::Semantic: return "semantic error";
  case RejectionReason::Lowering: return "lowering error";
  case RejectionReason::NoKernel: return "no kernel";
  case RejectionReason::TooFewInstructions: return "too few instructions";
  }
  return "?";
}

FilterResult corpus::filterContentFile(const std::string &Text,
                                       const FilterOptions &Opts) {
  FilterResult Result;

  ocl::PreprocessOptions POpts;
  if (Opts.UseShim)
    POpts.Includes["shim.h"] = shimHeaderText();
  std::string Input = Text;
  if (Opts.UseShim) {
    // The driver injects the shim whether or not the file includes it,
    // mirroring the paper's compile command.
    Input = shimHeaderText() + "\n" + Text;
  }

  auto Preprocessed = ocl::preprocess(Input, POpts);
  if (!Preprocessed.ok()) {
    Result.Reason = RejectionReason::Preprocessor;
    Result.Detail = Preprocessed.errorMessage();
    return Result;
  }
  Result.Preprocessed = Preprocessed.take();

  auto Parsed = ocl::parseProgram(Result.Preprocessed);
  if (!Parsed.ok()) {
    Result.Reason = RejectionReason::Syntax;
    Result.Detail = Parsed.errorMessage();
    return Result;
  }
  Result.Prog = std::shared_ptr<ocl::Program>(Parsed.take().release());

  Status SemaStatus = ocl::analyze(*Result.Prog);
  if (!SemaStatus.ok()) {
    Result.Reason = RejectionReason::Semantic;
    Result.Detail = SemaStatus.errorMessage();
    return Result;
  }

  if (Result.Prog->kernelCount() == 0) {
    Result.Reason = RejectionReason::NoKernel;
    Result.Detail = "no __kernel function defined";
    return Result;
  }

  size_t TotalInstructions = 0;
  for (const auto &F : Result.Prog->Functions) {
    if (!F->IsKernel)
      continue;
    auto Compiled = vm::compileKernel(*Result.Prog, *F);
    if (!Compiled.ok()) {
      Result.Reason = RejectionReason::Lowering;
      Result.Detail = Compiled.errorMessage();
      return Result;
    }
    TotalInstructions += Compiled.get().staticInstructionCount();
    Result.Kernels.push_back(Compiled.take());
  }

  if (TotalInstructions < Opts.MinInstructions) {
    Result.Reason = RejectionReason::TooFewInstructions;
    Result.Detail = "static instruction count below threshold";
    Result.Kernels.clear();
    return Result;
  }

  Result.Accepted = true;
  return Result;
}

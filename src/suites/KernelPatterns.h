//===- suites/KernelPatterns.h - GPGPU kernel pattern library ----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A library of classic GPGPU computational patterns used to synthesise
/// the benchmark-suite catalogue (Table 3) and the raw GitHub-style
/// corpus. Each generator renders parameterised OpenCL source. All
/// generated kernels:
///  - take their problem size from a `const int` parameter (the host
///    driver assigns it the global size, section 5.1);
///  - guard every global access so any payload of that size is safe;
///  - bound inner loops with literal trip counts so simulated execution
///    stays affordable.
///
/// Style knobs (vector width, local-memory usage, branchiness, compute
/// intensity) let each suite occupy its own region of the Grewe feature
/// space, which is what the cross-suite experiments of the paper depend
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUITES_KERNELPATTERNS_H
#define CLGEN_SUITES_KERNELPATTERNS_H

#include "support/Rng.h"

#include <string>
#include <vector>

namespace clgen {
namespace suites {

/// Identifies one computational pattern.
enum class PatternKind {
  VectorOp,      // Streaming elementwise zip/map.
  Saxpy,         // y += alpha * x.
  Stencil1D,     // k-point neighbourhood.
  ReductionTree, // Work-group tree reduction in local memory.
  SerialReduce,  // Per-item serial accumulation loop.
  MatMulNaive,   // Row x column inner product, strided loads.
  MatMulTiled,   // Local-memory tiled matrix multiply.
  Transpose,     // Strided permutation store.
  Gather,        // Indirect access through an index buffer.
  Spmv,          // Sparse matrix-vector (row pointer walk emulation).
  NBody,         // O(k) force loop with rsqrt.
  BlackScholes,  // Transcendental-heavy pricing formula.
  MonteCarlo,    // Iterated pseudo-random path simulation.
  Histogram,     // Atomic scatter increments.
  ScanBlock,     // Work-group inclusive scan (local + barrier).
  BinarySearch,  // Branchy divide and conquer probing.
  GraphWalk,     // BFS-like frontier expansion, very branchy.
  DynProgRow,    // Pathfinder-style dynamic programming row.
  BitonicStep,   // XOR-partner compare-exchange pass.
  Fwt,           // Fast Walsh-Hadamard butterfly (Listing 2's alias).
  Convolution,   // Small filter window.
  KMeansAssign,  // Distance loop + argmin branch.
};

/// Style knobs applied to a pattern.
struct PatternStyle {
  /// Element vector width for data buffers (1, 2, 4, 8 or 16).
  int VectorWidth = 1;
  /// Use local-memory staging where meaningful.
  bool UseLocalMemory = false;
  /// Insert extra data-dependent branching.
  bool ExtraBranching = false;
  /// Inner-loop trip count for looped patterns (literal in source).
  int InnerIterations = 64;
  /// Multiplier on arithmetic per element (unrolled in source).
  int ComputeIntensity = 1;
  /// Use float (true) or int (false) data.
  bool FloatData = true;
};

/// Renders \p Kind with the given \p Style into compilable OpenCL source
/// containing exactly one kernel named \p KernelName.
std::string renderPattern(PatternKind Kind, const PatternStyle &Style,
                          const std::string &KernelName);

/// All pattern kinds (for sweeps and property tests).
std::vector<PatternKind> allPatternKinds();

/// Human-readable pattern name.
const char *patternName(PatternKind Kind);

} // namespace suites
} // namespace clgen

#endif // CLGEN_SUITES_KERNELPATTERNS_H

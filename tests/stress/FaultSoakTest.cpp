//===- tests/stress/FaultSoakTest.cpp - randomized fault-injection soak -------===//
//
// Soaks the fault-tolerant streaming pipeline (refill + cache + ledger,
// multiple measurement workers) under randomized failpoint schedules:
// every round arms a different plan seed so faults land at different
// sites, counts and interleavings, and the suite asserts the invariants
// that must hold under EVERY schedule — the run terminates (no hang),
// refill accounting is exactly-once, surviving measurements all
// succeeded, and the store directory never holds a torn entry (every
// file is either a structurally-sound archive or an in-flight temp
// file). In builds without compiled-in failpoints the soak still runs,
// driven by the model's natural deterministic measurement failures
// instead of injection.
//
// Registered under the ctest label "stress" (tests/stress/ glob); the
// sanitizer matrix runs it via `ctest -L stress` in -DCLGS_SANITIZE
// trees, which is what makes the multi-worker rounds TSan coverage.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/Archive.h"
#include "store/FailureLedger.h"
#include "store/ResultCache.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

using namespace clgen;
using namespace clgen::core;

namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_fault_soak_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
  std::filesystem::path path() const { return Path; }

private:
  std::filesystem::path Path;
};

/// Every persisted file must be whole: a structurally-sound archive
/// (magic, version, checksum) or a leftover atomic-rename temp. A file
/// that is neither is a torn write — exactly what the injection rounds
/// try to produce and the store must never exhibit.
void expectNoTornEntries(const std::filesystem::path &Root) {
  std::error_code Ec;
  for (auto It = std::filesystem::recursive_directory_iterator(Root, Ec);
       !Ec && It != std::filesystem::recursive_directory_iterator(); ++It) {
    if (!It->is_regular_file())
      continue;
    const std::filesystem::path &File = It->path();
    if (File.extension() != ".clgs")
      continue; // Temp/lock files may be mid-write by design.
    auto Info = store::inspectArchive(File.string());
    EXPECT_TRUE(Info.ok()) << "torn store entry: " << File << ": "
                           << Info.errorMessage();
  }
}

void expectExactlyOnceAccounting(const StreamingResult &Out) {
  EXPECT_EQ(Out.Kernels.size(), Out.Measurements.size());
  EXPECT_EQ(Out.Stats.Accepted, Out.Kernels.size() + Out.Excised.size());
  for (const auto &M : Out.Measurements)
    EXPECT_TRUE(M.ok()) << M.errorMessage();
  std::set<size_t> Seen;
  for (const ExcisedKernel &E : Out.Excised) {
    EXPECT_TRUE(Seen.insert(E.AcceptIndex).second);
    EXPECT_NE(E.Kind, TrapKind::None);
  }
}

} // namespace

TEST(FaultSoakTest, RandomizedSchedulesNeverHangOrTearTheStore) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  ClgenPipeline Pipeline = ClgenPipeline::train(Files, POpts);

  const bool Injecting = support::FailPoints::sitesCompiledIn();
  ScratchDir Dir(Injecting ? "injected" : "natural");

  StreamingOptions Base;
  // Target 8 spans several natural deterministic out-of-bounds traps in
  // this model's accept stream, so the soak exercises refill even with
  // the sites compiled out.
  Base.Synthesis.TargetKernels = 8;
  Base.Synthesis.MaxAttempts = 30000;
  Base.Synthesis.Workers = 2;
  Base.Driver.GlobalSize = 2048;
  Base.Driver.MaxRetries = 2;
  Base.RefillFailures = true;
  Base.MeasureWorkers = 4;
  Base.QueueCapacity = 2;

  const size_t Rounds = Injecting ? 8 : 3;
  for (size_t Round = 0; Round < Rounds; ++Round) {
    if (Injecting) {
      // A different seed per round randomizes which sites fire, at
      // which keys and evaluation counts; the fire cap bounds every
      // schedule so the refill loop always has a fault-free tail.
      support::FailPlan Plan;
      Plan.Seed = 0x50AC + Round * 7919;
      Plan.Probability = Round % 2 ? 0.25 : 0.08;
      Plan.MaxFiresPerSite = 40;
      Plan.StallMs = 20;
      support::FailPoints::arm(Plan);
    }

    store::ResultCache Cache(Dir.str() + "/results");
    store::FailureLedger Ledger(Dir.str() + "/failures");
    StreamingOptions Opts = Base;
    Opts.Cache = &Cache;
    Opts.Ledger = &Ledger;
    Opts.Driver.WatchdogMs = Injecting ? 10 : 0;

    StreamingResult Out =
        Pipeline.synthesizeAndMeasure(runtime::amdPlatform(), Opts);
    if (Injecting)
      support::FailPoints::disarm();

    expectExactlyOnceAccounting(Out);
    EXPECT_EQ(Out.Kernels.size(), Base.Synthesis.TargetKernels)
        << "round " << Round << " stopped short of the target";
    expectNoTornEntries(Dir.path());
  }

  // The shared directories survived every schedule: the ledger listing
  // parses and replays, and a final clean run is served from the store
  // without measuring anything new.
  auto Records = store::listFailures(Dir.str() + "/failures");
  for (const auto &[Key, Rec] : Records) {
    EXPECT_TRUE(isDeterministicTrap(Rec.Kind))
        << "non-deterministic kind persisted: " << trapKindName(Rec.Kind);
    EXPECT_FALSE(Rec.Detail.empty());
  }
  store::ResultCache Cache(Dir.str() + "/results");
  store::FailureLedger Ledger(Dir.str() + "/failures");
  StreamingOptions Clean = Base;
  Clean.Cache = &Cache;
  Clean.Ledger = &Ledger;
  StreamingResult Final =
      Pipeline.synthesizeAndMeasure(runtime::amdPlatform(), Clean);
  expectExactlyOnceAccounting(Final);
  EXPECT_EQ(Final.CacheStats.Misses, 0u)
      << "after the soak every kernel in the accept range is either "
         "cached or ledgered";
}

//===- corpus/RejectionFilter.h - Compile-or-discard filter ------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rejection filter of section 4.1: "accepts as input a content file
/// and returns whether or not it contains compilable, executable OpenCL
/// code. To do this we attempt to compile the input to NVIDIA PTX
/// bytecode and perform static analysis to ensure a minimum static
/// instruction count of three." Our PTX stand-in is the project's
/// bytecode (vm/Bytecode.h). The same filter validates CLgen samples
/// (section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CORPUS_REJECTIONFILTER_H
#define CLGEN_CORPUS_REJECTIONFILTER_H

#include "ocl/Ast.h"
#include "vm/Bytecode.h"

#include <memory>
#include <string>
#include <vector>

namespace clgen {
namespace corpus {

enum class RejectionReason {
  None,          // Accepted.
  Preprocessor,  // Directive-level failure.
  Syntax,        // Parse error.
  Semantic,      // Undeclared identifier / type error / recursion.
  Lowering,      // Bytecode compilation failure.
  NoKernel,      // Compiles but defines no kernel function.
  TooFewInstructions, // Static instruction count below the threshold.
};

const char *rejectionReasonName(RejectionReason R);

struct FilterOptions {
  /// Inject the shim header (Listing 1) before compiling.
  bool UseShim = true;
  /// The paper's minimum static instruction count.
  size_t MinInstructions = 3;
};

struct FilterResult {
  bool Accepted = false;
  RejectionReason Reason = RejectionReason::None;
  std::string Detail;
  /// On acceptance: the preprocessed source, parsed program and every
  /// compiled kernel.
  std::string Preprocessed;
  std::shared_ptr<ocl::Program> Prog;
  std::vector<vm::CompiledKernel> Kernels;
};

/// Runs the filter over one content file.
FilterResult filterContentFile(const std::string &Text,
                               const FilterOptions &Opts = FilterOptions());

} // namespace corpus
} // namespace clgen

#endif // CLGEN_CORPUS_REJECTIONFILTER_H

//===- examples/store_tool.cpp - clgen-store lifecycle CLI --------------------===//
//
// `clgen-store`: inspection and lifecycle management for any artifact
// store directory (training snapshots, synthesis kernel sets, result
// caches — anything made of `.clgs` archives):
//
//   clgen-store ls DIR                    list entries (kind, size, checksum)
//   clgen-store stat DIR                  aggregate stats + manifest summary
//   clgen-store verify DIR                validate every entry's container
//   clgen-store gc DIR --max-bytes N      LRU-evict down to N bytes,
//            [--dry-run]                  quarantine corrupt entries,
//                                         publish the sweep manifest
//   clgen-store vacuum DIR                purge quarantine/, stale temp
//                                         files and abandoned lock files
//                                         (held locks skipped: live-safe)
//   clgen-store failures DIR              list a failure-ledger directory:
//                                         key, trap class, attempts,
//                                         diagnostic (sorted, byte-stable)
//   clgen-store stats DIR                 dry-run sweep + the process
//                                         metrics registry exposition
//
// The subcommands are thin wrappers over store::scanStore/sweep/vacuum
// and the byte-stable formatters in store/Lifecycle.h — the golden
// tests in tests/store/LifecycleTest.cpp cover the exact output bytes.
//
// Exit codes: 0 success; 1 operational failure (unreadable directory,
// failed sweep); 2 usage error; 3 = `verify` found corrupt entries.
//
//===----------------------------------------------------------------------===//

#include "store/FailureLedger.h"
#include "store/Lifecycle.h"
#include "support/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace clgen;

namespace {

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: clgen-store <subcommand> DIR [options]\n"
      "\n"
      "subcommands:\n"
      "  ls DIR                    list entries: kind, size on disk,\n"
      "                            checksum, name (sorted, byte-stable)\n"
      "  stat DIR                  aggregate counts/bytes by kind plus\n"
      "                            the last sweep manifest, if any\n"
      "  verify DIR                validate every entry's container\n"
      "                            (magic/version/size/checksum); exit 3\n"
      "                            when corruption is found\n"
      "  gc DIR [--max-bytes N] [--dry-run]\n"
      "                            sweep: quarantine corrupt entries and\n"
      "                            LRU-evict (oldest mtime first) until\n"
      "                            live bytes fit N (0/absent = no byte\n"
      "                            budget, validate only). --dry-run\n"
      "                            prints the plan and touches nothing.\n"
      "                            Surviving entries are bit-identical\n"
      "                            to before the sweep, always.\n"
      "  vacuum DIR                delete quarantined files, stale .tmp.\n"
      "                            files and abandoned lock files. Safe\n"
      "                            with live store users: a lock a live\n"
      "                            process holds is skipped, not deleted\n"
      "  failures DIR              list a failure-ledger directory (see\n"
      "                            store/FailureLedger.h): one line per\n"
      "                            known-bad kernel — key, trap class,\n"
      "                            attempts, diagnostic. Corrupt entries\n"
      "                            are skipped (use verify for integrity)\n"
      "  stats DIR                 plan a dry-run sweep of DIR, then print\n"
      "                            the process metrics registry exposition\n"
      "                            (support/Metrics.h) it populated —\n"
      "                            clgen.sweep.* counters and anything\n"
      "                            else this process recorded. Touches\n"
      "                            nothing on disk\n"
      "  help                      this text\n");
}

int runLs(const std::string &Dir) {
  auto Entries = store::scanStore(Dir);
  if (!Entries.ok()) {
    std::fprintf(stderr, "clgen-store ls: %s\n",
                 Entries.errorMessage().c_str());
    return 1;
  }
  std::fputs(store::formatLs(Entries.get()).c_str(), stdout);
  return 0;
}

int runStat(const std::string &Dir) {
  auto Entries = store::scanStore(Dir);
  if (!Entries.ok()) {
    std::fprintf(stderr, "clgen-store stat: %s\n",
                 Entries.errorMessage().c_str());
    return 1;
  }
  auto M = store::loadManifest(Dir);
  std::fputs(store::formatStat(Entries.get(),
                               store::quarantineCount(Dir),
                               M.ok() ? &M.get() : nullptr)
                 .c_str(),
             stdout);
  return 0;
}

int runVerify(const std::string &Dir) {
  auto Entries = store::scanStore(Dir);
  if (!Entries.ok()) {
    std::fprintf(stderr, "clgen-store verify: %s\n",
                 Entries.errorMessage().c_str());
    return 1;
  }
  std::fputs(store::formatVerify(Entries.get()).c_str(), stdout);
  for (const auto &E : Entries.get())
    if (!E.Valid)
      return 3;
  return 0;
}

int runGc(const std::string &Dir, uint64_t MaxBytes, bool DryRun) {
  store::SweepPolicy Policy;
  Policy.MaxBytes = MaxBytes;
  Policy.DryRun = DryRun;
  auto Report = store::sweep(Dir, Policy);
  if (!Report.ok()) {
    std::fprintf(stderr, "clgen-store gc: %s\n",
                 Report.errorMessage().c_str());
    return 1;
  }
  std::fputs(store::formatSweepReport(Report.get(), DryRun).c_str(),
             stdout);
  return 0;
}

int runVacuum(const std::string &Dir) {
  auto Report = store::vacuum(Dir);
  if (!Report.ok()) {
    std::fprintf(stderr, "clgen-store vacuum: %s\n",
                 Report.errorMessage().c_str());
    return 1;
  }
  const store::VacuumReport &R = Report.get();
  std::printf("vacuum: removed %zu quarantined (%llu bytes), %zu temp "
              "files, %zu lock files (%zu held locks skipped)\n",
              R.QuarantineRemoved,
              static_cast<unsigned long long>(R.QuarantineBytes),
              R.TempRemoved, R.LocksRemoved, R.LocksSkipped);
  return 0;
}

int runStats(const std::string &Dir) {
  store::SweepPolicy Policy;
  Policy.DryRun = true;
  auto Report = store::sweep(Dir, Policy);
  if (!Report.ok()) {
    std::fprintf(stderr, "clgen-store stats: %s\n",
                 Report.errorMessage().c_str());
    return 1;
  }
  std::fputs(support::MetricsRegistry::renderText({}).c_str(), stdout);
  if (!support::telemetryCompiledIn())
    std::printf("# telemetry sites compiled out (-DCLGS_TELEMETRY=OFF); "
                "the registry only sees always-on instrumentation\n");
  return 0;
}

int runFailures(const std::string &Dir) {
  auto Records = store::listFailures(Dir);
  std::fputs(store::formatFailures(Records).c_str(), stdout);
  std::printf("%zu recorded failure%s\n", Records.size(),
              Records.size() == 1 ? "" : "s");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(stderr);
    return 2;
  }
  std::string Sub = Argv[1];
  if (Sub == "help" || Sub == "--help" || Sub == "-h") {
    printUsage(stdout);
    return 0;
  }
  if (Argc < 3) {
    std::fprintf(stderr, "clgen-store %s: missing store directory\n\n",
                 Sub.c_str());
    printUsage(stderr);
    return 2;
  }
  std::string Dir = Argv[2];

  if (Sub == "ls" && Argc == 3)
    return runLs(Dir);
  if (Sub == "stat" && Argc == 3)
    return runStat(Dir);
  if (Sub == "verify" && Argc == 3)
    return runVerify(Dir);
  if (Sub == "vacuum" && Argc == 3)
    return runVacuum(Dir);
  if (Sub == "failures" && Argc == 3)
    return runFailures(Dir);
  if (Sub == "stats" && Argc == 3)
    return runStats(Dir);
  if (Sub == "gc") {
    uint64_t MaxBytes = 0;
    bool DryRun = false;
    for (int I = 3; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--dry-run") {
        DryRun = true;
      } else if (Arg == "--max-bytes" && I + 1 < Argc) {
        std::string Text = Argv[++I];
        if (Text.empty() ||
            Text.find_first_not_of("0123456789") != std::string::npos) {
          std::fprintf(stderr,
                       "clgen-store gc: --max-bytes expects a "
                       "non-negative integer\n");
          return 2;
        }
        MaxBytes = std::strtoull(Text.c_str(), nullptr, 10);
      } else {
        std::fprintf(stderr, "clgen-store gc: unknown option: %s\n",
                     Arg.c_str());
        return 2;
      }
    }
    return runGc(Dir, MaxBytes, DryRun);
  }

  std::fprintf(stderr, "clgen-store: unknown subcommand or arguments\n\n");
  printUsage(stderr);
  return 2;
}

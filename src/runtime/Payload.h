//===- runtime/Payload.h - Rule-based payload generation ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements section 5.1 of the paper: "A payload encapsulates all of
/// the arguments of an OpenCL compute kernel." For a given global size
/// Sg, the generator allocates host buffers of Sg elements with random
/// values for global pointer arguments, device-only buffers of Sg
/// elements for local pointer arguments, assigns the value Sg to
/// integral scalar arguments, and random values to all other scalars.
/// Host-to-device transfers are sized for all non-write-only global
/// buffers, device-to-host for all non-read-only ones.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_RUNTIME_PAYLOAD_H
#define CLGEN_RUNTIME_PAYLOAD_H

#include "runtime/PerfModel.h"
#include "support/Rng.h"
#include "vm/Bytecode.h"
#include "vm/Interpreter.h"

#include <vector>

namespace clgen {
namespace runtime {

/// Per-buffer-parameter access mode, derived statically from bytecode.
struct ArgAccess {
  bool Read = false;
  bool Written = false;
};

/// Scans \p Kernel and reports, for each global buffer slot, whether it
/// is read and/or written.
std::vector<ArgAccess> analyzeBufferAccess(const vm::CompiledKernel &Kernel);

/// A generated set of kernel arguments plus its transfer profile.
struct Payload {
  std::vector<vm::BufferData> Buffers;
  std::vector<vm::KernelArg> Args;
  TransferProfile Transfer;
  size_t GlobalSize = 0;
  size_t LocalSize = 0;

  /// Returns a deep copy (buffers included).
  Payload clone() const;
};

struct PayloadOptions {
  size_t GlobalSize = 1024;
  /// Work-group size; clamped to divide GlobalSize.
  size_t LocalSize = 64;
  /// Integer buffer contents stay in [0, IntBufferModulo) so kernels that
  /// gather through integer buffers stay in bounds.
  bool ClampIntBuffers = true;
};

/// Generates a payload for \p Kernel per the section 5.1 rules, drawing
/// randomness from \p R.
Payload generatePayload(const vm::CompiledKernel &Kernel,
                        const PayloadOptions &Opts, Rng &R);

/// Compares the non-read-only buffer contents of two executed payloads
/// with a floating-point tolerance. Used by the dynamic checker.
bool outputsEqual(const vm::CompiledKernel &Kernel, const Payload &A,
                  const Payload &B, double Epsilon = 1e-6);

/// Returns true when any non-read-only buffer of \p After differs from
/// \p Before (i.e. the kernel produced output).
bool outputsDiffer(const vm::CompiledKernel &Kernel, const Payload &Before,
                   const Payload &After, double Epsilon = 1e-6);

} // namespace runtime
} // namespace clgen

#endif // CLGEN_RUNTIME_PAYLOAD_H

//===- tests/ocl/LexerTest.cpp - lexer unit tests ----------------------------===//

#include "ocl/Lexer.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::ocl;

namespace {

std::vector<Token> lexNoEof(const std::string &Src) {
  auto Tokens = lex(Src);
  EXPECT_FALSE(Tokens.empty());
  EXPECT_TRUE(Tokens.back().is(TokenKind::Eof));
  Tokens.pop_back();
  return Tokens;
}

} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Tokens = lexNoEof("__kernel void foo if hotel");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_TRUE(Tokens[0].isKeyword("__kernel"));
  // "void" is a type name, not a reserved keyword.
  EXPECT_TRUE(Tokens[1].is(TokenKind::Identifier));
  EXPECT_TRUE(Tokens[2].is(TokenKind::Identifier));
  EXPECT_TRUE(Tokens[3].isKeyword("if"));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Identifier));
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lexNoEof("0 42 0x1F 7u 9UL");
  ASSERT_EQ(Tokens.size(), 5u);
  for (const Token &T : Tokens)
    EXPECT_TRUE(T.is(TokenKind::IntLiteral)) << T.Text;
  EXPECT_EQ(Tokens[2].Text, "0x1F");
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lexNoEof("1.0 3.5f .25 1e10 2.5e-3f 7f");
  ASSERT_EQ(Tokens.size(), 6u);
  for (const Token &T : Tokens)
    EXPECT_TRUE(T.is(TokenKind::FloatLiteral)) << T.Text;
}

TEST(LexerTest, IntegerThenDotDistinguishedFromFloat) {
  // Member access on a vector: "v.x" must not lex ".x" as a float.
  auto Tokens = lexNoEof("v.x");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Identifier));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Dot));
  EXPECT_TRUE(Tokens[2].is(TokenKind::Identifier));
}

TEST(LexerTest, OperatorsMaximalMunch) {
  auto Tokens = lexNoEof("<<= << <= < >>= >> >= > == = != ! && & || |");
  std::vector<TokenKind> Want = {
      TokenKind::LessLessEqual, TokenKind::LessLess, TokenKind::LessEqual,
      TokenKind::Less, TokenKind::GreaterGreaterEqual,
      TokenKind::GreaterGreater, TokenKind::GreaterEqual, TokenKind::Greater,
      TokenKind::EqualEqual, TokenKind::Equal, TokenKind::ExclaimEqual,
      TokenKind::Exclaim, TokenKind::AmpAmp, TokenKind::Amp,
      TokenKind::PipePipe, TokenKind::Pipe};
  ASSERT_EQ(Tokens.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Want[I]) << I;
}

TEST(LexerTest, IncrementDecrementAndCompound) {
  auto Tokens = lexNoEof("i++ --j x += 2");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_TRUE(Tokens[1].is(TokenKind::PlusPlus));
  EXPECT_TRUE(Tokens[2].is(TokenKind::MinusMinus));
  EXPECT_TRUE(Tokens[5].is(TokenKind::PlusEqual));
}

TEST(LexerTest, LineCommentsSkipped) {
  auto Tokens = lexNoEof("a // comment here\nb");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, BlockCommentsSkipped) {
  auto Tokens = lexNoEof("a /* multi\nline */ b");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[1].Line, 2);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Tokens = lexNoEof("a\n  b");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Line, 1);
  EXPECT_EQ(Tokens[1].Line, 2);
  EXPECT_EQ(Tokens[1].Column, 3);
}

TEST(LexerTest, CharLiteralBecomesIntValue) {
  auto Tokens = lexNoEof("'A' '\\n'");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(Tokens[0].Text, "65");
  EXPECT_EQ(Tokens[1].Text, "10");
}

TEST(LexerTest, StringLiteral) {
  auto Tokens = lexNoEof("\"hello \\\" world\"");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::StringLiteral));
}

TEST(LexerTest, UnterminatedStringIsUnknown) {
  auto Tokens = lexNoEof("\"oops\nnext");
  ASSERT_GE(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Unknown));
}

TEST(LexerTest, StrayCharacterIsUnknown) {
  auto Tokens = lexNoEof("a @ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_TRUE(Tokens[1].is(TokenKind::Unknown));
}

TEST(LexerTest, RealKernelSnippet) {
  const char *Src =
      "__kernel void A(__global float* a, const int b) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < b) { a[i] *= 2.0f; }\n"
      "}\n";
  auto Tokens = lexNoEof(Src);
  EXPECT_GT(Tokens.size(), 30u);
  EXPECT_TRUE(Tokens[0].isKeyword("__kernel"));
}

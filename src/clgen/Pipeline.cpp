//===- clgen/Pipeline.cpp - End-to-end CLgen pipeline -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "store/Archive.h"
#include "store/FailureLedger.h"
#include "store/Lock.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"
#include "support/Channel.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <deque>
#include <filesystem>
#include <functional>
#include <optional>
#include <thread>

using namespace clgen;
using namespace clgen::core;

ClgenPipeline
ClgenPipeline::train(const std::vector<corpus::ContentFile> &Files,
                     const PipelineOptions &Opts) {
  ClgenPipeline P;
  P.TrainingCorpus = corpus::buildCorpus(Files, Opts.Corpus);
  switch (Opts.Backend) {
  case ModelBackend::NGram: {
    auto M = std::make_unique<model::NGramModel>(Opts.NGram);
    M->train(P.TrainingCorpus.Entries);
    P.Model = std::move(M);
    break;
  }
  case ModelBackend::Lstm: {
    auto M = std::make_unique<model::LstmModel>(Opts.Lstm);
    M->train(P.TrainingCorpus.Entries, Opts.Train);
    P.Model = std::move(M);
    break;
  }
  }
  return P;
}

SynthesisResult ClgenPipeline::synthesize(const SynthesisOptions &Opts) {
  return synthesizeKernels(*Model, Opts);
}

StreamingResult core::synthesizeAndMeasure(model::LanguageModel &Model,
                                           const runtime::Platform &P,
                                           const StreamingOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  auto MsBetween = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double, std::milli>(B - A).count();
  };
  Clock::time_point Start = Clock::now();

  StreamingResult Out;
  // One result slot per ACCEPTED kernel, appended in accept order: a
  // deque keeps element addresses stable while it grows, so the
  // producer can mint new slots while consumers write through pointers
  // to earlier ones — memory stays proportional to actual output, not
  // the requested target. Keys and the ledger-hit flags are
  // index-aligned side tables (kept only when a cache or ledger is
  // configured).
  std::deque<Result<runtime::Measurement>> Slots;
  std::deque<uint64_t> Keys;
  std::deque<bool> FromLedger;
  const bool NeedKeys = Opts.Cache != nullptr || Opts.Ledger != nullptr;

  size_t MeasureWorkers =
      ThreadPool::resolveWorkerCount(Opts.MeasureWorkers);
  size_t Capacity = Opts.QueueCapacity > 0
                        ? Opts.QueueCapacity
                        : std::max<size_t>(MeasureWorkers * 2, 8);

  Rng Base(Opts.Driver.Seed);
  SynthesisEngine Eng(Model, Opts.Synthesis);

  double SynthMs = 0.0, DrainMs = 0.0;
  size_t Scanned = 0; // Slots already swept for ledger recording.

  // One producer/consumer round: extends the accepted-kernel set to
  // \p CumTarget with a fresh channel + consumer pool, then drains and
  // sweeps the new slots into the failure ledger. The classic
  // (non-refill) pipeline is exactly one round; refill runs more.
  auto RunRound = [&](size_t CumTarget) {
    support::Channel<runtime::MeasureJob> Jobs(Capacity);
    std::vector<std::thread> Consumers;
    Consumers.reserve(MeasureWorkers);
    for (size_t W = 0; W < MeasureWorkers; ++W)
      Consumers.emplace_back([&Jobs, &P, &Opts] {
        runtime::runMeasurementLoop(Jobs, P, Opts.Cache);
      });

    // Close-and-join must run even when the producer throws (sampling,
    // the rejection filter or a cache probe can raise): otherwise the
    // consumers block in pop() forever and unwinding the joinable
    // threads would terminate the process. Idempotent, so the success
    // path below can invoke it early to timestamp the drain.
    auto CloseAndJoin = [&Jobs, &Consumers] {
      Jobs.close();
      for (std::thread &T : Consumers)
        if (T.joinable())
          T.join();
    };
    struct Guard {
      std::function<void()> &Fn;
      ~Guard() { Fn(); }
    };
    std::function<void()> CloseFn = CloseAndJoin;
    Guard JoinGuard{CloseFn};

    // The producer: the in-order accept stage hands each kernel over
    // the moment it is admitted. The batch-seed derivation matches
    // runBenchmarkBatch exactly, so streaming results (and cache keys)
    // are those of the phased path.
    AcceptSink Enqueue = [&](size_t Index, const SynthesizedKernel &SK) {
      CLGS_TRACE_SPAN_IDX("enqueue", Index);
      Slots.push_back(Result<runtime::Measurement>::error("not measured"));
      runtime::MeasureJob J;
      J.Slot = &Slots.back();
      J.Index = Index;
      J.Opts = runtime::batchDriverOptions(Opts.Driver, Base, Index);
      if (NeedKeys) {
        Keys.push_back(store::measurementKey(SK.Kernel, J.Opts, P));
        FromLedger.push_back(false);
      }
      // Injected producer-side fault, keyed by the accept index: the
      // kernel's slot records an injected failure without a job ever
      // entering the channel — the refill pass treats it like any
      // other failed measurement.
      if (CLGS_FAILPOINT_KEYED("pipeline.enqueue", Index)) {
        *J.Slot = Result<runtime::Measurement>::error(
            "injected fault at pipeline.enqueue", TrapKind::Injected);
        return;
      }
      if (Opts.Cache) {
        J.CacheKey = Keys.back();
        if (auto Hit = Opts.Cache->lookup(J.CacheKey)) {
          // Enqueue-time probe: a hit is resolved right here and never
          // occupies a measurement slot.
          *J.Slot = *Hit;
          ++Out.CacheStats.Hits;
          CLGS_COUNT("clgen.measure.cache_hits");
          return;
        }
        J.WriteBack = true;
      }
      if (Opts.Ledger) {
        if (auto Known = Opts.Ledger->lookup(Keys.back())) {
          // Negative hit: the recorded failure is replayed verbatim;
          // the kernel is never (re-)measured.
          *J.Slot = Result<runtime::Measurement>::error(Known->Detail,
                                                        Known->Kind);
          FromLedger.back() = true;
          ++Out.CacheStats.LedgerHits;
          CLGS_COUNT("clgen.measure.ledger_hits");
          return;
        }
      }
      if (Opts.Cache) {
        ++Out.CacheStats.Misses; // Counts kernels actually measured.
        CLGS_COUNT("clgen.measure.misses");
      }
      J.Kernel = SK.Kernel;
      Jobs.push(std::move(J)); // Blocks when measurement is behind.
    };

    Clock::time_point RoundStart = Clock::now();
    Eng.extendTo(CumTarget, Enqueue);
    Clock::time_point RoundSynthDone = Clock::now();
    CloseAndJoin();
    DrainMs += MsBetween(RoundSynthDone, Clock::now());
    SynthMs += MsBetween(RoundStart, RoundSynthDone);

    // Sweep this round's fresh deterministic failures into the ledger
    // (record() refuses transient/injected kinds on its own, but the
    // isDeterministicTrap guard keeps the tally exact). Producer-side,
    // after the join: consumers never touch the ledger.
    if (Opts.Ledger) {
      for (size_t I = Scanned; I < Slots.size(); ++I) {
        if (Slots[I].ok() || FromLedger[I] ||
            !isDeterministicTrap(Slots[I].trap()))
          continue;
        store::FailureRecord Rec;
        Rec.Kind = Slots[I].trap();
        Rec.Detail = Slots[I].errorMessage();
        Rec.Attempts = 1; // Deterministic traps fail on attempt one.
        if (Opts.Ledger->record(Keys[I], Rec).ok()) {
          ++Out.CacheStats.LedgerRecords;
          CLGS_COUNT("clgen.measure.ledger_records");
        }
      }
    }
    Scanned = Slots.size();
  };

  const size_t Target = Opts.Synthesis.TargetKernels;
  RunRound(Target);

  if (Opts.RefillFailures) {
    // Refill rounds: every failed slot is a shortfall; the engine's
    // sampling cursor resumes where it stopped, so replacement kernels
    // are exactly those a larger fault-free run would have produced
    // next. Terminates when TargetKernels measurements succeeded, the
    // attempt budget ran dry, or a round made no synthesis progress.
    auto CountOk = [&] {
      size_t N = 0;
      for (const Result<runtime::Measurement> &S : Slots)
        if (S.ok())
          ++N;
      return N;
    };
    size_t Ok = CountOk();
    while (Ok < Target && !Eng.exhausted()) {
      size_t Before = Slots.size();
      RunRound(Slots.size() + (Target - Ok));
      if (Slots.size() == Before)
        break;
      Ok = CountOk();
    }
  }
  Clock::time_point End = Clock::now();

  std::vector<SynthesizedKernel> AllKernels = Eng.takeKernels();
  Out.Stats = Eng.stats();
  if (Opts.RefillFailures) {
    // Excision: survivors keep their accept-order positions relative
    // to each other; failures move to Excised with their classified
    // cause. Accepted == survivors + excised, exactly once.
    for (size_t I = 0; I < AllKernels.size(); ++I) {
      if (Slots[I].ok()) {
        Out.Kernels.push_back(std::move(AllKernels[I]));
        Out.Measurements.push_back(std::move(Slots[I]));
      } else {
        ExcisedKernel E;
        E.AcceptIndex = I;
        E.Source = std::move(AllKernels[I].Source);
        E.Key = NeedKeys ? Keys[I] : 0;
        E.Kind = Slots[I].trap();
        E.Error = Slots[I].errorMessage();
        E.FromLedger = NeedKeys ? static_cast<bool>(FromLedger[I]) : false;
        Out.Excised.push_back(std::move(E));
      }
    }
  } else {
    Out.Kernels = std::move(AllKernels);
    Out.Measurements.reserve(Slots.size());
    for (Result<runtime::Measurement> &S : Slots)
      Out.Measurements.push_back(std::move(S));
  }
  Out.SynthesisWallMs = SynthMs;
  Out.DrainWallMs = DrainMs;
  Out.TotalWallMs = MsBetween(Start, End);
  return Out;
}

namespace {

/// Deserializes a persisted kernel-set artifact (stats + verified
/// kernels). nullopt on any corruption — callers re-synthesize and
/// overwrite. Shared by synthesizeOrLoad and the streaming warm start.
std::optional<SynthesisResult> loadSynthesisArtifact(const std::string &Path) {
  auto Opened = store::ArchiveReader::open(Path,
                                           store::ArchiveKind::Synthesis);
  if (!Opened.ok())
    return std::nullopt;
  store::ArchiveReader R = Opened.take();
  SynthesisResult Out;
  Out.Stats.Attempts = R.readU64();
  Out.Stats.IncompleteSamples = R.readU64();
  Out.Stats.RejectedByFilter = R.readU64();
  Out.Stats.Duplicates = R.readU64();
  Out.Stats.Accepted = R.readU64();
  uint64_t KernelCount = R.readU64();
  for (uint64_t I = 0; I < KernelCount && R.ok(); ++I) {
    SynthesizedKernel K;
    K.Source = R.readString();
    K.Kernel = store::deserializeCompiledKernel(R);
    // The checksum authenticates bytes, not semantics: reject any
    // archive whose bytecode would not pass the compiler's own
    // invariants before it can reach the interpreter.
    if (R.ok() && !vm::verifyKernel(K.Kernel).empty())
      R.fail("stored kernel fails bytecode verification: " +
             vm::verifyKernel(K.Kernel));
    Out.Kernels.push_back(std::move(K));
  }
  if (!R.finish().ok())
    return std::nullopt; // Corrupt: re-synthesize and overwrite.
  return Out;
}

/// Persists a kernel-set artifact. Best-effort: a failed write just
/// stays cold.
void saveSynthesisArtifact(const std::string &Path,
                           const SynthesisResult &Out) {
  store::ArchiveWriter W(store::ArchiveKind::Synthesis);
  W.writeU64(Out.Stats.Attempts);
  W.writeU64(Out.Stats.IncompleteSamples);
  W.writeU64(Out.Stats.RejectedByFilter);
  W.writeU64(Out.Stats.Duplicates);
  W.writeU64(Out.Stats.Accepted);
  W.writeU64(Out.Kernels.size());
  for (const SynthesizedKernel &K : Out.Kernels) {
    W.writeString(K.Source);
    store::serializeCompiledKernel(W, K.Kernel);
  }
  (void)W.saveTo(Path);
}

/// The streaming warm path: measures an already-loaded kernel set. The
/// producer is an archive reader, not a sampler — no SynthesisEngine
/// exists, so the request performs zero sampling by construction. The
/// per-kernel seed derivation (accept index into batchDriverOptions),
/// the enqueue-time cache/ledger probes and the ledger sweep are the
/// same as the cold pipeline, so measurements (and cache keys) are
/// byte-identical to a cold run of the same configuration.
StreamingResult measureLoadedKernels(SynthesisResult Loaded,
                                     const runtime::Platform &P,
                                     const StreamingOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  auto MsBetween = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double, std::milli>(B - A).count();
  };
  Clock::time_point Start = Clock::now();

  StreamingResult Out;
  const size_t N = Loaded.Kernels.size();
  std::deque<Result<runtime::Measurement>> Slots;
  std::deque<uint64_t> Keys;
  std::deque<bool> FromLedger;
  const bool NeedKeys = Opts.Cache != nullptr || Opts.Ledger != nullptr;

  size_t MeasureWorkers =
      ThreadPool::resolveWorkerCount(Opts.MeasureWorkers);
  size_t Capacity = Opts.QueueCapacity > 0
                        ? Opts.QueueCapacity
                        : std::max<size_t>(MeasureWorkers * 2, 8);

  Rng Base(Opts.Driver.Seed);

  support::Channel<runtime::MeasureJob> Jobs(Capacity);
  std::vector<std::thread> Consumers;
  Consumers.reserve(MeasureWorkers);
  for (size_t W = 0; W < MeasureWorkers; ++W)
    Consumers.emplace_back([&Jobs, &P, &Opts] {
      runtime::runMeasurementLoop(Jobs, P, Opts.Cache);
    });
  auto CloseAndJoin = [&Jobs, &Consumers] {
    Jobs.close();
    for (std::thread &T : Consumers)
      if (T.joinable())
        T.join();
  };
  struct Guard {
    std::function<void()> &Fn;
    ~Guard() { Fn(); }
  };
  std::function<void()> CloseFn = CloseAndJoin;
  Guard JoinGuard{CloseFn};

  Clock::time_point ProduceStart = Clock::now();
  for (size_t Index = 0; Index < N; ++Index) {
    const SynthesizedKernel &SK = Loaded.Kernels[Index];
    CLGS_TRACE_SPAN_IDX("enqueue", Index);
    Slots.push_back(Result<runtime::Measurement>::error("not measured"));
    runtime::MeasureJob J;
    J.Slot = &Slots.back();
    J.Index = Index;
    J.Opts = runtime::batchDriverOptions(Opts.Driver, Base, Index);
    if (NeedKeys) {
      Keys.push_back(store::measurementKey(SK.Kernel, J.Opts, P));
      FromLedger.push_back(false);
    }
    if (CLGS_FAILPOINT_KEYED("pipeline.enqueue", Index)) {
      *J.Slot = Result<runtime::Measurement>::error(
          "injected fault at pipeline.enqueue", TrapKind::Injected);
      continue;
    }
    if (Opts.Cache) {
      J.CacheKey = Keys.back();
      if (auto Hit = Opts.Cache->lookup(J.CacheKey)) {
        *J.Slot = *Hit;
        ++Out.CacheStats.Hits;
        CLGS_COUNT("clgen.measure.cache_hits");
        continue;
      }
      J.WriteBack = true;
    }
    if (Opts.Ledger) {
      if (auto Known = Opts.Ledger->lookup(Keys.back())) {
        *J.Slot = Result<runtime::Measurement>::error(Known->Detail,
                                                      Known->Kind);
        FromLedger.back() = true;
        ++Out.CacheStats.LedgerHits;
        CLGS_COUNT("clgen.measure.ledger_hits");
        continue;
      }
    }
    if (Opts.Cache) {
      ++Out.CacheStats.Misses;
      CLGS_COUNT("clgen.measure.misses");
    }
    J.Kernel = SK.Kernel;
    Jobs.push(std::move(J));
  }
  Clock::time_point ProduceDone = Clock::now();
  CloseAndJoin();
  Out.DrainWallMs = MsBetween(ProduceDone, Clock::now());
  Out.SynthesisWallMs = MsBetween(ProduceStart, ProduceDone);

  if (Opts.Ledger) {
    for (size_t I = 0; I < Slots.size(); ++I) {
      if (Slots[I].ok() || FromLedger[I] ||
          !isDeterministicTrap(Slots[I].trap()))
        continue;
      store::FailureRecord Rec;
      Rec.Kind = Slots[I].trap();
      Rec.Detail = Slots[I].errorMessage();
      Rec.Attempts = 1;
      if (Opts.Ledger->record(Keys[I], Rec).ok()) {
        ++Out.CacheStats.LedgerRecords;
        CLGS_COUNT("clgen.measure.ledger_records");
      }
    }
  }

  Out.Kernels = std::move(Loaded.Kernels);
  Out.Stats = Loaded.Stats; // Replayed archive stats: byte-parity with cold.
  Out.Measurements.reserve(Slots.size());
  for (Result<runtime::Measurement> &S : Slots)
    Out.Measurements.push_back(std::move(S));
  Out.TotalWallMs = MsBetween(Start, Clock::now());
  return Out;
}

} // namespace

std::optional<uint64_t>
ClgenPipeline::synthesisKeyDigest(const SynthesisOptions &Opts) const {
  // Key: model identity + every option that can change the output.
  // Workers and WaveSize are deliberately absent — the synthesis engine
  // guarantees bit-identical kernels for any value of either.
  store::ArchiveWriter Key(store::ArchiveKind::Synthesis);
  if (ArtifactFingerprint != 0) {
    Key.writeU8('F');
    Key.writeU64(ArtifactFingerprint);
  } else if (Model->backendName() == std::string_view("ngram")) {
    Key.writeU8('M');
    static_cast<const model::NGramModel &>(*Model).serialize(Key);
  } else if (Model->backendName() == std::string_view("lstm")) {
    Key.writeU8('M');
    static_cast<const model::LstmModel &>(*Model).serialize(Key);
  } else {
    return std::nullopt; // Unserializable model: nothing to key on.
  }
  Key.writeU64(Opts.TargetKernels);
  Key.writeU64(Opts.MaxAttempts);
  Key.writeBool(Opts.Spec.has_value());
  if (Opts.Spec) {
    Key.writeU64(Opts.Spec->ArgTypes.size());
    for (const std::string &T : Opts.Spec->ArgTypes)
      Key.writeString(T);
  }
  Key.writeU64(Opts.Sampling.MaxLength);
  Key.writeF64(Opts.Sampling.Temperature);
  Key.writeU64(Opts.Seed);
  return Key.payloadDigest();
}

SynthesisResult
ClgenPipeline::synthesizeOrLoad(const std::string &CacheDir,
                                const SynthesisOptions &Opts,
                                bool *Loaded) {
  if (Loaded)
    *Loaded = false;

  std::optional<uint64_t> KeyDigest = synthesisKeyDigest(Opts);
  if (!KeyDigest)
    return synthesize(Opts); // Unserializable model: nothing to key on.

  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  std::string Path =
      CacheDir + "/synthesis-" + store::hexDigest(*KeyDigest) + ".clgs";

  // Lock-free fast path: warm stores never touch a lock file.
  if (auto Hit = loadSynthesisArtifact(Path)) {
    if (Loaded)
      *Loaded = true;
    return *Hit;
  }

  // Cold miss: serialize concurrent cold runs of this configuration so
  // the sampling work happens once. tryAcquire first — uncontended
  // misses skip the poll loop; actual racers wait, then every holder
  // re-probes (double-checked locking) before working. A lock failure
  // or timeout degrades to duplicated work, never an error: every
  // writer publishes via atomic rename.
  store::ScopedLock Lock = store::ScopedLock::acquireForMiss(
      store::lockFilePath(CacheDir, "synthesis", *KeyDigest));
  if (Lock.held()) {
    // Re-probe under the lock even when it was uncontended (a racer
    // may have published and released since the fast-path probe);
    // holders publish before releasing, so this makes exactly-once
    // strict rather than probabilistic.
    if (auto Hit = loadSynthesisArtifact(Path)) {
      if (Loaded)
        *Loaded = true;
      return *Hit;
    }
  }

  SynthesisResult Out = synthesize(Opts);
  saveSynthesisArtifact(Path, Out);
  return Out;
}

StreamingResult ClgenPipeline::synthesizeAndMeasureOrLoad(
    const std::string &CacheDir, const runtime::Platform &P,
    const StreamingOptions &Opts, StreamingWarmInfo *Info) {
  StreamingWarmInfo Local;
  StreamingWarmInfo &I = Info ? *Info : Local;
  I = StreamingWarmInfo();

  // Refill couples the delivered kernel set to measurement outcomes, so
  // it is not a pure function of the synthesis options the key digests:
  // refill requests always sample and never load or persist.
  if (Opts.RefillFailures)
    return synthesizeAndMeasure(P, Opts);

  std::optional<uint64_t> KeyDigest = synthesisKeyDigest(Opts.Synthesis);
  if (!KeyDigest)
    return synthesizeAndMeasure(P, Opts);
  I.KeyDigest = *KeyDigest;

  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  I.ArtifactPath =
      CacheDir + "/synthesis-" + store::hexDigest(*KeyDigest) + ".clgs";

  // Lock-free fast path, then the same double-checked "synthesis" lock
  // as synthesizeOrLoad — one advisory key covers both entry points, so
  // a streaming request and a plain synthesizeOrLoad of the same
  // configuration cold-sample exactly once between them.
  auto MeasureWarm = [&](SynthesisResult Loaded) {
    I.Warm = true;
    I.LoadedKernels = Loaded.Kernels.size();
    CLGS_COUNT("clgen.stream.warm_starts");
    return measureLoadedKernels(std::move(Loaded), P, Opts);
  };
  if (auto Hit = loadSynthesisArtifact(I.ArtifactPath))
    return MeasureWarm(std::move(*Hit));

  store::ScopedLock Lock = store::ScopedLock::acquireForMiss(
      store::lockFilePath(CacheDir, "synthesis", *KeyDigest));
  if (Lock.held()) {
    if (auto Hit = loadSynthesisArtifact(I.ArtifactPath))
      return MeasureWarm(std::move(*Hit));
  }

  StreamingResult Out = synthesizeAndMeasure(P, Opts);
  SynthesisResult Artifact;
  Artifact.Stats = Out.Stats;
  Artifact.Kernels = Out.Kernels;
  saveSynthesisArtifact(I.ArtifactPath, Artifact);
  I.Persisted = true;
  return Out;
}

uint64_t
ClgenPipeline::fingerprint(const std::vector<corpus::ContentFile> &Files,
                           const PipelineOptions &Opts) {
  // Canonical byte recipe over everything training is a pure function
  // of. Any field added to the options structs must be appended here,
  // or stale artifacts would be served for the new configuration.
  // Scheduling knobs (CorpusOptions::Workers/ShardSize, and the whole
  // of PipelineOptions::Train) are excluded: sharded ingest and the
  // data-parallel training engine are bit-identical across them by
  // contract. LstmOptions::BatchLanes is NOT a scheduling knob — it
  // changes the training trajectory — so it is fingerprinted.
  store::ArchiveWriter W(store::ArchiveKind::Model);
  W.writeU64(Files.size());
  for (const corpus::ContentFile &F : Files) {
    W.writeString(F.Path);
    W.writeString(F.Text);
  }
  W.writeBool(Opts.Corpus.Filter.UseShim);
  W.writeU64(Opts.Corpus.Filter.MinInstructions);
  switch (Opts.Backend) {
  case ModelBackend::NGram:
    W.writeString("ngram");
    W.writeI32(Opts.NGram.Order);
    W.writeF64(Opts.NGram.BackoffAlpha);
    W.writeF64(Opts.NGram.UnigramSmoothing);
    break;
  case ModelBackend::Lstm:
    W.writeString("lstm");
    W.writeI32(Opts.Lstm.Layers);
    W.writeI32(Opts.Lstm.HiddenSize);
    W.writeI32(Opts.Lstm.Epochs);
    W.writeI32(Opts.Lstm.SequenceLength);
    W.writeF32(Opts.Lstm.LearningRate);
    W.writeF32(Opts.Lstm.LearningRateDecay);
    W.writeI32(Opts.Lstm.DecayEveryEpochs);
    W.writeF32(Opts.Lstm.GradClip);
    W.writeU64(Opts.Lstm.Seed);
    W.writeI32(Opts.Lstm.BatchLanes);
    break;
  }
  return W.payloadDigest();
}

Result<ClgenPipeline>
ClgenPipeline::trainOrLoad(const std::string &CacheDir,
                           const std::vector<corpus::ContentFile> &Files,
                           const PipelineOptions &Opts,
                           TrainOrLoadInfo *Info) {
  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  if (Ec || !std::filesystem::is_directory(CacheDir, Ec))
    return Result<ClgenPipeline>::error(
        "cannot create artifact cache directory: " + CacheDir);

  TrainOrLoadInfo Local;
  TrainOrLoadInfo &I = Info ? *Info : Local;
  I = TrainOrLoadInfo();
  I.Fingerprint = fingerprint(Files, Opts);
  std::string Hex = store::hexDigest(I.Fingerprint);
  I.ModelPath = CacheDir + "/model-" + Hex + ".clgs";
  I.CorpusPath = CacheDir + "/corpus-" + Hex + ".clgs";

  // A fingerprint hit requires both artifacts to load cleanly; a
  // corrupt or missing file just falls back to retraining (which then
  // overwrites it atomically). This probe is the LOCK-FREE fast path:
  // warm starts never touch a lock file.
  auto TryLoad = [&]() -> std::optional<ClgenPipeline> {
    auto StoredModel = store::loadModel(I.ModelPath);
    auto StoredCorpus = store::loadCorpus(I.CorpusPath);
    if (!StoredModel.ok() || !StoredCorpus.ok())
      return std::nullopt;
    ClgenPipeline P;
    P.TrainingCorpus = StoredCorpus.take();
    P.Model = StoredModel.take();
    P.ArtifactFingerprint = I.Fingerprint;
    I.LoadedModel = I.LoadedCorpus = true;
    return P;
  };
  if (auto Hit = TryLoad())
    return std::move(*Hit);

  // Cold miss: stampede control. Concurrent cold runs of one
  // fingerprint serialize on an advisory lock so training happens
  // once — the losers wake up, re-probe (double-checked locking) and
  // load the winner's artifacts. Uncontended misses take tryAcquire
  // and proceed without waiting; a timed-out or failed lock degrades
  // to duplicated training (publication stays atomic either way).
  store::ScopedLock Lock = store::ScopedLock::acquireForMiss(
      store::lockFilePath(CacheDir, "train", I.Fingerprint));
  if (Lock.held()) {
    // Re-probe under the lock even when it was uncontended: a racer
    // may have trained, published and released between our fast-path
    // probe and this acquisition. Holders publish before releasing,
    // so a hit here is complete — this second probe is what makes
    // "K concurrent cold runs train exactly once" strict.
    if (auto Hit = TryLoad())
      return std::move(*Hit);
  }

  ClgenPipeline P = train(Files, Opts);
  P.ArtifactFingerprint = I.Fingerprint;
  Status SaveModel = store::saveModel(I.ModelPath, *P.Model);
  Status SaveCorpus = store::saveCorpus(I.CorpusPath, P.TrainingCorpus);
  if (!SaveModel.ok())
    return Result<ClgenPipeline>::error("cannot persist trained model: " +
                                        SaveModel.errorMessage());
  if (!SaveCorpus.ok())
    return Result<ClgenPipeline>::error("cannot persist corpus snapshot: " +
                                        SaveCorpus.errorMessage());
  return P;
}

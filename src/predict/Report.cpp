//===- predict/Report.cpp - Byte-stable paper-artifact reports ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/Report.h"

#include "support/StringUtils.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdlib>
#include <map>

using namespace clgen;
using namespace clgen::predict;

namespace {

std::vector<Observation> ofSuite(const std::vector<Observation> &Obs,
                                 const std::string &Suite) {
  std::vector<Observation> Out;
  for (const Observation &O : Obs)
    if (O.Suite == Suite)
      Out.push_back(O);
  return Out;
}

std::string percent(double X) { return formatString("%.1f%%", X * 100.0); }

std::string keyString(const FeatureKey &K) {
  return formatString("(%lld,%lld,%lld,%lld,%lld)",
                      static_cast<long long>(K[0]),
                      static_cast<long long>(K[1]),
                      static_cast<long long>(K[2]),
                      static_cast<long long>(K[3]),
                      static_cast<long long>(K[4]));
}

int64_t l1Distance(const FeatureKey &A, const FeatureKey &B) {
  int64_t D = 0;
  for (size_t I = 0; I < A.size(); ++I)
    D += std::llabs(A[I] - B[I]);
  return D;
}

/// One grid of Table 1 plus its per-training-suite averages.
std::string renderGrid(const std::vector<Observation> &Obs,
                       const std::vector<Observation> &Extra,
                       const std::vector<std::string> &SuiteNames,
                       FeatureSetKind Kind, TreeOptions Opts,
                       const char *AverageCaption, Table1Stats *Stats) {
  TextTable T;
  std::vector<std::string> Header = {"test \\ train"};
  for (const std::string &N : SuiteNames)
    Header.push_back(N);
  T.setHeader(Header);

  std::vector<double> TrainSum(SuiteNames.size(), 0.0);
  std::vector<int> TrainCount(SuiteNames.size(), 0);
  double Worst = 1.0;
  std::string WorstPair;
  size_t Trained = 0;

  for (const std::string &TestSuite : SuiteNames) {
    std::vector<Observation> Test = ofSuite(Obs, TestSuite);
    std::vector<std::string> Row = {TestSuite};
    for (size_t TI = 0; TI < SuiteNames.size(); ++TI) {
      const std::string &TrainSuite = SuiteNames[TI];
      std::vector<Observation> Train = ofSuite(Obs, TrainSuite);
      if (TrainSuite == TestSuite || Train.empty() || Test.empty()) {
        Row.push_back("-");
        continue;
      }
      Train.insert(Train.end(), Extra.begin(), Extra.end());
      std::vector<int> Preds = trainAndPredict(Train, Test, Kind, Opts);
      ++Trained;
      double Perf = performanceRelativeToOracle(Test, Preds);
      Row.push_back(percent(Perf));
      TrainSum[TI] += Perf;
      TrainCount[TI] += 1;
      if (Perf < Worst) {
        Worst = Perf;
        WorstPair = "train " + TrainSuite + " -> test " + TestSuite;
      }
    }
    T.addRow(Row);
  }

  std::string Out = T.render();
  Out += "\n";
  Out += AverageCaption;
  Out += "\n";
  size_t BestIdx = 0;
  double BestAvg = -1.0;
  for (size_t TI = 0; TI < SuiteNames.size(); ++TI) {
    double Avg = TrainCount[TI]
                     ? TrainSum[TI] / static_cast<double>(TrainCount[TI])
                     : 0.0;
    Out += formatString("  %-11s %s\n", SuiteNames[TI].c_str(),
                        percent(Avg).c_str());
    if (TrainCount[TI] && Avg > BestAvg) {
      BestAvg = Avg;
      BestIdx = TI;
    }
  }
  if (!WorstPair.empty())
    Out += formatString("Worst pair: %s at %s\n", WorstPair.c_str(),
                        percent(Worst).c_str());
  if (Stats) {
    Stats->TreesTrained += Trained;
    Stats->BestTrainSuite = BestIdx;
    if (Worst < Stats->WorstPerformance) {
      Stats->WorstPerformance = Worst;
      Stats->WorstPair = WorstPair;
    }
  }
  return Out;
}

} // namespace

std::set<FeatureKey>
predict::benchmarkFeatureKeys(const std::vector<Observation> &Obs) {
  std::set<FeatureKey> Keys;
  std::set<std::string> Seen;
  for (const Observation &O : Obs)
    if (Seen.insert(O.Suite + "/" + O.Benchmark + "/" + O.Kernel).second)
      Keys.insert(O.Raw.Static.key());
  return Keys;
}

std::vector<size_t>
predict::cumulativeMatchCurve(const std::vector<FeatureKey> &Kernels,
                              const std::set<FeatureKey> &Keys,
                              const std::vector<size_t> &Checkpoints) {
  std::vector<size_t> Curve;
  size_t Matches = 0, Cursor = 0;
  for (size_t Checkpoint : Checkpoints) {
    for (; Cursor < std::min(Checkpoint, Kernels.size()); ++Cursor)
      Matches += Keys.count(Kernels[Cursor]) != 0;
    Curve.push_back(Matches);
  }
  return Curve;
}

std::string predict::renderTable1(const std::vector<Observation> &Obs,
                                  const std::vector<Observation> &Synthetic,
                                  const std::vector<std::string> &SuiteNames,
                                  FeatureSetKind Kind, TreeOptions Opts,
                                  Table1Stats *Stats) {
  std::string Out =
      "Cross-suite performance relative to the oracle (baseline):\n";
  Out += renderGrid(Obs, {}, SuiteNames, Kind, Opts,
                    "Average performance by training suite (baseline):",
                    Stats);
  if (!Synthetic.empty()) {
    // Count whole synthetic benchmarks, not observation rows.
    std::set<std::string> Groups;
    for (const Observation &O : Synthetic)
      Groups.insert(O.Suite + "/" + O.Benchmark);
    Out += formatString("\nWith %zu CLgen synthetic benchmarks added to "
                        "every training set:\n",
                        Groups.size());
    Out += renderGrid(Obs, Synthetic, SuiteNames, Kind, Opts,
                      "Average performance by training suite (+CLgen):",
                      Stats);
  }
  return Out;
}

std::string predict::renderFig9(const std::vector<Observation> &Obs,
                                const std::vector<Observation> &Synthetic,
                                size_t MaxRows, Fig9Stats *Stats) {
  // Benchmark side: one entry per unique (Suite, Benchmark, Kernel),
  // key -> smallest qualified name carrying it (deterministic label
  // for nearest-neighbour rows).
  std::map<FeatureKey, std::string> KeyLabel;
  std::set<std::string> Seen;
  for (const Observation &O : Obs) {
    std::string Label = O.Suite + "/" + O.Benchmark + "/" + O.Kernel;
    if (!Seen.insert(Label).second)
      continue;
    auto [It, Inserted] = KeyLabel.emplace(O.Raw.Static.key(), Label);
    if (!Inserted && Label < It->second)
      It->second = Label;
  }

  // Candidate side: one row per synthetic benchmark group (all datasets
  // of one kernel share its static features), sorted by name.
  std::map<std::string, FeatureKey> Candidates;
  for (const Observation &O : Synthetic)
    Candidates.emplace(O.Benchmark, O.Raw.Static.key());

  TextTable T;
  T.setHeader({"synthetic kernel", "features", "match"});
  size_t Exact = 0, Rows = 0;
  for (const auto &[Name, Key] : Candidates) {
    std::string Match;
    auto Hit = KeyLabel.find(Key);
    if (Hit != KeyLabel.end()) {
      ++Exact;
      Match = "exact: " + Hit->second;
    } else if (!KeyLabel.empty()) {
      // Nearest benchmark tuple under L1; ties resolve to the smallest
      // key, which std::map iteration order delivers for free.
      int64_t BestDist = -1;
      const std::string *BestLabel = nullptr;
      for (const auto &[BKey, BLabel] : KeyLabel) {
        int64_t D = l1Distance(Key, BKey);
        if (BestDist < 0 || D < BestDist) {
          BestDist = D;
          BestLabel = &BLabel;
        }
      }
      Match = formatString("nearest: %s L1=%lld", BestLabel->c_str(),
                           static_cast<long long>(BestDist));
    } else {
      Match = "no benchmark keys";
    }
    if (Rows < MaxRows)
      T.addRow({Name, keyString(Key), Match});
    ++Rows;
  }

  std::string Out = formatString(
      "Feature-space coverage: %zu distinct benchmark feature tuples\n",
      KeyLabel.size());
  Out += T.render();
  if (Rows > MaxRows)
    Out += formatString("(+%zu more synthetic kernels not shown)\n",
                        Rows - MaxRows);
  Out += formatString(
      "%zu of %zu synthetic kernels match a benchmark feature tuple "
      "exactly (%s)\n",
      Exact, Candidates.size(),
      Candidates.empty()
          ? "0.0%"
          : percent(static_cast<double>(Exact) /
                    static_cast<double>(Candidates.size()))
                .c_str());
  if (Stats) {
    Stats->Candidates = Candidates.size();
    Stats->ExactMatches = Exact;
  }
  return Out;
}

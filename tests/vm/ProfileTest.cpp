//===- tests/vm/ProfileTest.cpp - VM opcode profiling tests -------------------===//
//
// Coverage for vm/Profile.h and the interpreter's pointer-gated
// profiling hooks: per-opcode counts agree with ExecCounters when
// work-group sampling is off, pairs never cross work-items, profiling
// never changes execution results, merges commute (the worker-count
// determinism argument), and the top-pair report is byte-stable.
//
//===----------------------------------------------------------------------===//

#include "vm/Profile.h"

#include "vm/Compiler.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::vm;

namespace {

CompiledKernel compile(const std::string &Src) {
  auto R = compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.take() : CompiledKernel();
}

LaunchConfig config1D(size_t Global, size_t Local) {
  LaunchConfig C;
  C.GlobalSize[0] = Global;
  C.LocalSize[0] = Local;
  return C;
}

BufferData iota(size_t N) {
  BufferData B = BufferData::zeros(N, 1);
  for (size_t I = 0; I < N; ++I)
    B.Data[I] = static_cast<double>(I);
  return B;
}

const char *ScaleSrc = "__kernel void A(__global float* a, const int n) {\n"
                       "  int i = get_global_id(0);\n"
                       "  if (i < n) { a[i] = a[i] * 2.0f + 1.0f; }\n"
                       "}";

/// Runs ScaleSrc over \p Global items profiling into \p Prof; returns
/// the interpreter's ExecCounters.
ExecCounters runProfiled(size_t Global, size_t Local, OpcodeProfile *Prof) {
  CompiledKernel K = compile(ScaleSrc);
  std::vector<BufferData> Bufs = {iota(Global)};
  LaunchConfig C = config1D(Global, Local);
  C.Profile = Prof;
  auto R = launchKernel(
      K, {KernelArg::buffer(0), KernelArg::scalar(static_cast<int>(Global))},
      Bufs, C);
  EXPECT_TRUE(R.ok()) << R.errorMessage();
  return R.ok() ? R.get() : ExecCounters();
}

} // namespace

TEST(ProfileTest, CountsAgreeWithExecCounters) {
  // With every work-group simulated (no MaxWorkGroups sampling in
  // launchKernel), the profile's raw instruction total must equal the
  // interpreter's own count.
  OpcodeProfile P;
  ExecCounters C = runProfiled(64, 8, &P);
  EXPECT_GT(P.instructionTotal(), 0u);
  EXPECT_EQ(P.instructionTotal(), C.Instructions);
  EXPECT_EQ(P.branchTotal(),
            P.Count[static_cast<size_t>(Opcode::Jz)] +
                P.Count[static_cast<size_t>(Opcode::Jnz)]);
  EXPECT_EQ(P.Launches, 1u);
  // Every work-item halts exactly once.
  EXPECT_EQ(P.Count[static_cast<size_t>(Opcode::Halt)], 64u);
}

TEST(ProfileTest, PairsStayWithinWorkItems) {
  // Pair totals count transitions within a work-item, so each item
  // contributes (instructions - 1) pairs: the first instruction of
  // every item has no predecessor. 64 items ⇒ pair total is exactly
  // instructions - 64. A profiler that let pairs cross items would
  // count instructions - 1.
  OpcodeProfile P;
  runProfiled(64, 8, &P);
  uint64_t PairTotal = 0;
  for (size_t A = 0; A < NumOpcodes; ++A)
    for (size_t B = 0; B < NumOpcodes; ++B)
      PairTotal += P.Pair[A][B];
  EXPECT_EQ(PairTotal, P.instructionTotal() - 64);
  // Nothing follows Halt within an item.
  for (size_t B = 0; B < NumOpcodes; ++B)
    EXPECT_EQ(P.Pair[static_cast<size_t>(Opcode::Halt)][B], 0u);
}

TEST(ProfileTest, ProfilingDoesNotPerturbExecution) {
  CompiledKernel K = compile(ScaleSrc);
  std::vector<BufferData> Plain = {iota(32)}, Profiled = {iota(32)};
  LaunchConfig C = config1D(32, 8);
  auto R1 = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(32)},
                         Plain, C);
  OpcodeProfile P;
  C.Profile = &P;
  auto R2 = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(32)},
                         Profiled, C);
  ASSERT_TRUE(R1.ok() && R2.ok());
  EXPECT_EQ(Plain[0].Data, Profiled[0].Data);
  EXPECT_EQ(R1.get().Instructions, R2.get().Instructions);
}

TEST(ProfileTest, LaunchesAreDeterministic) {
  OpcodeProfile A, B;
  runProfiled(64, 8, &A);
  runProfiled(64, 8, &B);
  EXPECT_EQ(A.instructionTotal(), B.instructionTotal());
  for (size_t I = 0; I < NumOpcodes; ++I)
    EXPECT_EQ(A.Count[I], B.Count[I]) << opcodeName(static_cast<Opcode>(I));
}

TEST(ProfileTest, MergeCommutesAndAccumulates) {
  // The worker-count determinism argument: per-launch profiles merged
  // in any order give the same aggregate.
  OpcodeProfile A, B;
  runProfiled(16, 4, &A);
  runProfiled(64, 8, &B);
  OpcodeProfile AB, BA;
  AB.merge(A);
  AB.merge(B);
  BA.merge(B);
  BA.merge(A);
  EXPECT_EQ(AB.Launches, 2u);
  EXPECT_EQ(AB.instructionTotal(),
            A.instructionTotal() + B.instructionTotal());
  for (size_t I = 0; I < NumOpcodes; ++I)
    EXPECT_EQ(AB.Count[I], BA.Count[I]);
  for (size_t X = 0; X < NumOpcodes; ++X)
    for (size_t Y = 0; Y < NumOpcodes; ++Y)
      EXPECT_EQ(AB.Pair[X][Y], BA.Pair[X][Y]);
}

TEST(ProfileTest, SharedProfileAggregates) {
  SharedOpcodeProfile Shared;
  OpcodeProfile A, B;
  runProfiled(16, 4, &A);
  runProfiled(16, 4, &B);
  Shared.add(A);
  Shared.add(B);
  OpcodeProfile Total = Shared.snapshot();
  EXPECT_EQ(Total.Launches, 2u);
  EXPECT_EQ(Total.instructionTotal(), 2 * A.instructionTotal());
}

TEST(ProfileTest, TopPairsRankedAndBounded) {
  OpcodeProfile P;
  P.Pair[static_cast<size_t>(Opcode::LoadConst)]
       [static_cast<size_t>(Opcode::BinOp)] = 50;
  P.Pair[static_cast<size_t>(Opcode::BinOp)]
       [static_cast<size_t>(Opcode::StoreMem)] = 70;
  P.Pair[static_cast<size_t>(Opcode::Mov)]
       [static_cast<size_t>(Opcode::Mov)] = 70;
  auto Top = topPairs(P, 2);
  ASSERT_EQ(Top.size(), 2u);
  // Descending count; the 70/70 tie breaks on (First, Second) enum
  // order, and Mov precedes BinOp in the opcode enum or not — either
  // way the order is fixed, so assert it exactly.
  EXPECT_EQ(Top[0].Count, 70u);
  EXPECT_EQ(Top[1].Count, 70u);
  bool MovFirst = static_cast<size_t>(Opcode::Mov) <
                   static_cast<size_t>(Opcode::BinOp);
  EXPECT_EQ(Top[0].First, MovFirst ? Opcode::Mov : Opcode::BinOp);
  auto All = topPairs(P, 100);
  EXPECT_EQ(All.size(), 3u) << "zero-count pairs must not be returned";
}

TEST(ProfileTest, ReportIsByteStable) {
  OpcodeProfile P;
  runProfiled(64, 8, &P);
  std::string R1 = formatOpcodeReport(P, 5);
  std::string R2 = formatOpcodeReport(P, 5);
  EXPECT_EQ(R1, R2);
  EXPECT_NE(R1.find("vm profile:"), std::string::npos) << R1;
  EXPECT_NE(R1.find("top opcodes:"), std::string::npos);
  EXPECT_NE(R1.find("superinstruction candidates"), std::string::npos);
  EXPECT_NE(R1.find("ldc"), std::string::npos)
      << "mnemonics come from opcodeName(): " << R1;
}

TEST(ProfileTest, ProfilingForcesUnfusedSwitchDispatch) {
  // A profiling launch always executes on the reference switch loop,
  // whatever Dispatch asks for: the opcode-pair counts must see the
  // unfused sequences fusion candidates are mined from. A profiler
  // riding the fused path would never observe e.g. LoadConst→BinOp —
  // the superinstruction consumes the pair — and would therefore stop
  // ranking exactly the pairs already fused (self-extinguishing).
  CompiledKernel K = compile(ScaleSrc);
  auto Launch = [&K](DispatchMode Mode, OpcodeProfile *Prof) {
    std::vector<BufferData> Bufs = {iota(64)};
    LaunchConfig C = config1D(64, 8);
    C.Dispatch = Mode;
    C.Profile = Prof;
    auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(64)},
                          Bufs, C);
    EXPECT_TRUE(R.ok()) << R.errorMessage();
    return R.ok() ? R.get() : ExecCounters();
  };

  OpcodeProfile UnderFused, UnderSwitch;
  ExecCounters CF = Launch(DispatchMode::ThreadedFused, &UnderFused);
  ExecCounters CS = Launch(DispatchMode::Switch, &UnderSwitch);

  // Identical profiles whichever mode was requested...
  EXPECT_EQ(UnderFused.instructionTotal(), UnderSwitch.instructionTotal());
  for (size_t A = 0; A < NumOpcodes; ++A)
    for (size_t B = 0; B < NumOpcodes; ++B)
      EXPECT_EQ(UnderFused.Pair[A][B], UnderSwitch.Pair[A][B])
          << opcodeName(static_cast<Opcode>(A)) << " -> "
          << opcodeName(static_cast<Opcode>(B));
  // ...agreeing with the interpreter's own accounting in both runs.
  EXPECT_EQ(UnderFused.instructionTotal(), CF.Instructions);
  EXPECT_EQ(UnderSwitch.instructionTotal(), CS.Instructions);
  // And the profile saw genuinely unfused sequences: ScaleSrc's
  // `* 2.0f + 1.0f` executes LoadConst→BinOp pairs, the very pairs the
  // fused path would have swallowed.
  EXPECT_GT(UnderFused.Pair[static_cast<size_t>(Opcode::LoadConst)]
                           [static_cast<size_t>(Opcode::BinOp)],
            0u);

  // A fused (unprofiled) launch retires the same per-original-
  // instruction counts, so profile-derived totals stay valid for runs
  // executed in any mode.
  ExecCounters Plain = Launch(DispatchMode::ThreadedFused, nullptr);
  EXPECT_EQ(Plain.Instructions, UnderSwitch.instructionTotal());

  // The report states the dispatch provenance of its numbers.
  std::string Report = formatOpcodeReport(UnderFused, 5);
  EXPECT_NE(Report.find("unfused switch dispatch"), std::string::npos)
      << Report;
}

TEST(ProfileTest, EmptyProfileReport) {
  OpcodeProfile P;
  std::string R = formatOpcodeReport(P, 5);
  EXPECT_NE(R.find("vm profile: 0 instructions"), std::string::npos) << R;
}

//===- ocl/Preprocessor.cpp - Minimal C preprocessor -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Preprocessor.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_set>

using namespace clgen;
using namespace clgen::ocl;

std::string ocl::stripComments(const std::string &Source) {
  std::string Out;
  Out.reserve(Source.size());
  size_t I = 0;
  while (I < Source.size()) {
    char C = Source[I];
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '/') {
      while (I < Source.size() && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < Source.size() &&
             !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          Out += '\n'; // Preserve line structure.
        ++I;
      }
      I = I + 2 <= Source.size() ? I + 2 : Source.size();
      Out += ' ';
      continue;
    }
    if (C == '"') {
      // Copy string literals verbatim so "//" inside them survives.
      Out += C;
      ++I;
      while (I < Source.size() && Source[I] != '"' && Source[I] != '\n') {
        if (Source[I] == '\\' && I + 1 < Source.size()) {
          Out += Source[I];
          ++I;
        }
        Out += Source[I];
        ++I;
      }
      if (I < Source.size()) {
        Out += Source[I];
        ++I;
      }
      continue;
    }
    Out += C;
    ++I;
  }
  return Out;
}

namespace {

struct Macro {
  bool FunctionLike = false;
  std::vector<std::string> Params;
  std::string Body;
};

class PreprocessorImpl {
public:
  PreprocessorImpl(const std::string &Source, const PreprocessOptions &Opts)
      : Opts(Opts) {
    for (const auto &[Name, Body] : Opts.Predefined) {
      Macro M;
      M.Body = Body;
      Macros[Name] = M;
    }
    Text = spliceLines(stripComments(Source));
  }

  Result<std::string> run() {
    std::string Out;
    if (!processText(Text, Out, /*Depth=*/0))
      return Result<std::string>::error(Error);
    if (!CondStack.empty())
      return Result<std::string>::error("unterminated #if block");
    return Out;
  }

private:
  const PreprocessOptions &Opts;
  std::string Text;
  std::unordered_map<std::string, Macro> Macros;
  std::string Error;

  struct CondState {
    bool ParentActive;
    bool ThisActive;
    bool AnyTaken;
  };
  std::vector<CondState> CondStack;

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message;
    return false;
  }

  static std::string spliceLines(std::string In) {
    return replaceAll(std::move(In), "\\\n", " ");
  }

  bool active() const {
    for (const CondState &S : CondStack)
      if (!S.ThisActive)
        return false;
    return true;
  }

  bool processText(const std::string &In, std::string &Out, int Depth) {
    if (Depth > 16)
      return fail("include nesting too deep");
    for (const std::string &Line : splitLines(In)) {
      std::string_view Trimmed = trim(Line);
      if (!Trimmed.empty() && Trimmed[0] == '#') {
        if (!processDirective(std::string(Trimmed.substr(1)), Out, Depth))
          return false;
        Out += '\n';
        continue;
      }
      if (!active()) {
        Out += '\n';
        continue;
      }
      std::string Expanded;
      if (!expandMacros(Line, Expanded, 0))
        return false;
      Out += Expanded;
      Out += '\n';
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Directives
  //===--------------------------------------------------------------------===//

  bool processDirective(const std::string &Directive, std::string &Out,
                        int Depth) {
    std::string_view Rest = trim(Directive);
    std::string Keyword;
    size_t I = 0;
    while (I < Rest.size() &&
           (std::isalpha(static_cast<unsigned char>(Rest[I])) ||
            Rest[I] == '_'))
      Keyword += Rest[I++];
    std::string_view Args = trim(Rest.substr(I));

    if (Keyword == "define") {
      if (active())
        return handleDefine(std::string(Args));
      return true;
    }
    if (Keyword == "undef") {
      if (active())
        Macros.erase(std::string(trim(Args)));
      return true;
    }
    if (Keyword == "ifdef" || Keyword == "ifndef") {
      bool Defined = Macros.count(std::string(trim(Args))) != 0;
      bool Take = Keyword == "ifdef" ? Defined : !Defined;
      pushCond(Take);
      return true;
    }
    if (Keyword == "if") {
      long Value = 0;
      if (active() && !evalCondition(std::string(Args), Value))
        return false;
      pushCond(Value != 0);
      return true;
    }
    if (Keyword == "elif") {
      if (CondStack.empty())
        return fail("#elif without #if");
      CondState &S = CondStack.back();
      if (S.AnyTaken) {
        S.ThisActive = false;
        return true;
      }
      long Value = 0;
      if (S.ParentActive && !evalCondition(std::string(Args), Value))
        return false;
      S.ThisActive = Value != 0;
      S.AnyTaken |= S.ThisActive;
      return true;
    }
    if (Keyword == "else") {
      if (CondStack.empty())
        return fail("#else without #if");
      CondState &S = CondStack.back();
      S.ThisActive = !S.AnyTaken;
      S.AnyTaken = true;
      return true;
    }
    if (Keyword == "endif") {
      if (CondStack.empty())
        return fail("#endif without #if");
      CondStack.pop_back();
      return true;
    }
    if (Keyword == "include") {
      if (!active())
        return true;
      return handleInclude(std::string(Args), Out, Depth);
    }
    if (Keyword == "pragma" || Keyword == "line" || Keyword == "warning")
      return true; // Accepted and ignored.
    if (Keyword == "error") {
      if (active())
        return fail("#error directive: " + std::string(Args));
      return true;
    }
    // Unknown directive: tolerate (GitHub content files contain noise).
    return true;
  }

  void pushCond(bool Take) {
    CondState S;
    S.ParentActive = active();
    S.ThisActive = Take;
    S.AnyTaken = Take;
    CondStack.push_back(S);
  }

  bool handleDefine(const std::string &Args) {
    size_t I = 0;
    std::string Name;
    while (I < Args.size() &&
           (std::isalnum(static_cast<unsigned char>(Args[I])) ||
            Args[I] == '_'))
      Name += Args[I++];
    if (Name.empty())
      return fail("malformed #define");

    Macro M;
    if (I < Args.size() && Args[I] == '(') {
      // Function-like: no space between name and '('.
      M.FunctionLike = true;
      ++I;
      std::string Param;
      while (I < Args.size() && Args[I] != ')') {
        if (Args[I] == ',') {
          M.Params.push_back(std::string(trim(Param)));
          Param.clear();
        } else {
          Param += Args[I];
        }
        ++I;
      }
      if (I >= Args.size())
        return fail("unterminated macro parameter list");
      ++I; // ')'
      if (!trim(Param).empty())
        M.Params.push_back(std::string(trim(Param)));
    }
    M.Body = std::string(trim(Args.substr(I)));
    Macros[Name] = M;
    return true;
  }

  bool handleInclude(const std::string &Args, std::string &Out, int Depth) {
    std::string_view A = trim(Args);
    if (A.size() < 2)
      return true;
    char Open = A[0];
    char Close = Open == '<' ? '>' : '"';
    if (Open != '<' && Open != '"')
      return true;
    size_t End = A.find(Close, 1);
    if (End == std::string_view::npos)
      return true;
    std::string Path(A.substr(1, End - 1));
    // Resolve by basename against the in-memory header map.
    size_t Slash = Path.find_last_of('/');
    std::string Base =
        Slash == std::string::npos ? Path : Path.substr(Slash + 1);
    auto It = Opts.Includes.find(Base);
    if (It == Opts.Includes.end())
      It = Opts.Includes.find(Path);
    if (It == Opts.Includes.end())
      return true; // Unknown header: skip (may surface as sema errors).
    return processText(spliceLines(stripComments(It->second)), Out,
                       Depth + 1);
  }

  //===--------------------------------------------------------------------===//
  // Conditional expressions
  //===--------------------------------------------------------------------===//

  /// Evaluates a #if expression after macro expansion. Undefined
  /// identifiers evaluate to 0, as in C.
  bool evalCondition(const std::string &Raw, long &Value) {
    std::string Expanded;
    // defined(X) must be handled before macro expansion.
    std::string WithDefined = resolveDefined(Raw);
    if (!expandMacros(WithDefined, Expanded, 0))
      return false;
    const char *P = Expanded.c_str();
    bool Ok = true;
    Value = parseCondOr(P, Ok);
    if (!Ok)
      return fail("malformed #if expression: " + Raw);
    return true;
  }

  std::string resolveDefined(const std::string &In) {
    std::string Out;
    size_t I = 0;
    while (I < In.size()) {
      if (In.compare(I, 7, "defined") == 0 &&
          (I + 7 == In.size() ||
           !std::isalnum(static_cast<unsigned char>(In[I + 7])))) {
        size_t J = I + 7;
        while (J < In.size() &&
               std::isspace(static_cast<unsigned char>(In[J])))
          ++J;
        bool Paren = J < In.size() && In[J] == '(';
        if (Paren)
          ++J;
        while (J < In.size() &&
               std::isspace(static_cast<unsigned char>(In[J])))
          ++J;
        std::string Name;
        while (J < In.size() &&
               (std::isalnum(static_cast<unsigned char>(In[J])) ||
                In[J] == '_'))
          Name += In[J++];
        if (Paren) {
          while (J < In.size() &&
                 std::isspace(static_cast<unsigned char>(In[J])))
            ++J;
          if (J < In.size() && In[J] == ')')
            ++J;
        }
        Out += Macros.count(Name) ? "1" : "0";
        I = J;
        continue;
      }
      Out += In[I++];
    }
    return Out;
  }

  // Tiny recursive-descent evaluator for integer #if expressions.
  static void skipWs(const char *&P) {
    while (*P == ' ' || *P == '\t')
      ++P;
  }
  long parseCondPrimary(const char *&P, bool &Ok) {
    skipWs(P);
    if (*P == '(') {
      ++P;
      long V = parseCondOr(P, Ok);
      skipWs(P);
      if (*P == ')')
        ++P;
      else
        Ok = false;
      return V;
    }
    if (*P == '!') {
      ++P;
      return !parseCondPrimary(P, Ok);
    }
    if (*P == '-') {
      ++P;
      return -parseCondPrimary(P, Ok);
    }
    if (std::isdigit(static_cast<unsigned char>(*P))) {
      char *End = nullptr;
      long V = std::strtol(P, &End, 0);
      // Skip integer suffixes.
      while (*End == 'u' || *End == 'U' || *End == 'l' || *End == 'L')
        ++End;
      P = End;
      return V;
    }
    if (std::isalpha(static_cast<unsigned char>(*P)) || *P == '_') {
      // Undefined identifier -> 0.
      while (std::isalnum(static_cast<unsigned char>(*P)) || *P == '_')
        ++P;
      return 0;
    }
    Ok = false;
    return 0;
  }
  long parseCondMul(const char *&P, bool &Ok) {
    long V = parseCondPrimary(P, Ok);
    for (;;) {
      skipWs(P);
      if (*P == '*') {
        ++P;
        V *= parseCondPrimary(P, Ok);
      } else if (*P == '/' ) {
        ++P;
        long R = parseCondPrimary(P, Ok);
        V = R ? V / R : 0;
      } else if (*P == '%') {
        ++P;
        long R = parseCondPrimary(P, Ok);
        V = R ? V % R : 0;
      } else {
        return V;
      }
    }
  }
  long parseCondAdd(const char *&P, bool &Ok) {
    long V = parseCondMul(P, Ok);
    for (;;) {
      skipWs(P);
      if (*P == '+') {
        ++P;
        V += parseCondMul(P, Ok);
      } else if (*P == '-') {
        ++P;
        V -= parseCondMul(P, Ok);
      } else {
        return V;
      }
    }
  }
  long parseCondRel(const char *&P, bool &Ok) {
    long V = parseCondAdd(P, Ok);
    for (;;) {
      skipWs(P);
      if (P[0] == '<' && P[1] == '=') {
        P += 2;
        V = V <= parseCondAdd(P, Ok);
      } else if (P[0] == '>' && P[1] == '=') {
        P += 2;
        V = V >= parseCondAdd(P, Ok);
      } else if (P[0] == '<' && P[1] != '<') {
        ++P;
        V = V < parseCondAdd(P, Ok);
      } else if (P[0] == '>' && P[1] != '>') {
        ++P;
        V = V > parseCondAdd(P, Ok);
      } else if (P[0] == '=' && P[1] == '=') {
        P += 2;
        V = V == parseCondAdd(P, Ok);
      } else if (P[0] == '!' && P[1] == '=') {
        P += 2;
        V = V != parseCondAdd(P, Ok);
      } else {
        return V;
      }
    }
  }
  long parseCondAnd(const char *&P, bool &Ok) {
    long V = parseCondRel(P, Ok);
    for (;;) {
      skipWs(P);
      if (P[0] == '&' && P[1] == '&') {
        P += 2;
        long R = parseCondRel(P, Ok);
        V = V && R;
      } else {
        return V;
      }
    }
  }
  long parseCondOr(const char *&P, bool &Ok) {
    long V = parseCondAnd(P, Ok);
    for (;;) {
      skipWs(P);
      if (P[0] == '|' && P[1] == '|') {
        P += 2;
        long R = parseCondAnd(P, Ok);
        V = V || R;
      } else {
        return V;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Macro expansion
  //===--------------------------------------------------------------------===//

  bool expandMacros(const std::string &In, std::string &Out, int Depth) {
    if (Depth > 32)
      return fail("macro expansion too deep (recursive macro?)");
    Out.clear();
    size_t I = 0;
    while (I < In.size()) {
      char C = In[I];
      if (!(std::isalpha(static_cast<unsigned char>(C)) || C == '_')) {
        Out += C;
        ++I;
        continue;
      }
      std::string Name;
      while (I < In.size() &&
             (std::isalnum(static_cast<unsigned char>(In[I])) ||
              In[I] == '_'))
        Name += In[I++];
      auto It = Macros.find(Name);
      if (It == Macros.end()) {
        Out += Name;
        continue;
      }
      const Macro &M = It->second;
      if (!M.FunctionLike) {
        std::string Expanded;
        // Temporarily hide the macro to avoid self-recursion.
        Macro Saved = M;
        Macros.erase(Name);
        bool Ok = expandMacros(Saved.Body, Expanded, Depth + 1);
        Macros[Name] = Saved;
        if (!Ok)
          return false;
        Out += Expanded;
        continue;
      }
      // Function-like: require '(' (otherwise leave the name alone).
      size_t J = I;
      while (J < In.size() &&
             std::isspace(static_cast<unsigned char>(In[J])))
        ++J;
      if (J >= In.size() || In[J] != '(') {
        Out += Name;
        continue;
      }
      // Collect arguments with balanced parentheses.
      ++J;
      std::vector<std::string> Args;
      std::string Arg;
      int ParenDepth = 1;
      while (J < In.size() && ParenDepth > 0) {
        char A = In[J];
        if (A == '(')
          ++ParenDepth;
        if (A == ')') {
          --ParenDepth;
          if (ParenDepth == 0)
            break;
        }
        if (A == ',' && ParenDepth == 1) {
          Args.push_back(Arg);
          Arg.clear();
        } else {
          Arg += A;
        }
        ++J;
      }
      if (ParenDepth != 0)
        return fail("unterminated macro invocation of '" + Name + "'");
      ++J; // ')'
      if (!Arg.empty() || !Args.empty())
        Args.push_back(Arg);
      if (Args.size() != M.Params.size())
        return fail("macro '" + Name + "' wrong argument count");
      I = J;

      std::string Substituted = substituteParams(M, Args);
      std::string Expanded;
      Macro Saved = M;
      Macros.erase(Name);
      bool Ok = expandMacros(Substituted, Expanded, Depth + 1);
      Macros[Name] = Saved;
      if (!Ok)
        return false;
      Out += Expanded;
    }
    return true;
  }

  static std::string substituteParams(const Macro &M,
                                      const std::vector<std::string> &Args) {
    std::string Out;
    const std::string &Body = M.Body;
    size_t I = 0;
    while (I < Body.size()) {
      char C = Body[I];
      if (!(std::isalpha(static_cast<unsigned char>(C)) || C == '_')) {
        Out += C;
        ++I;
        continue;
      }
      std::string Word;
      while (I < Body.size() &&
             (std::isalnum(static_cast<unsigned char>(Body[I])) ||
              Body[I] == '_'))
        Word += Body[I++];
      bool Replaced = false;
      for (size_t PI = 0; PI < M.Params.size(); ++PI) {
        if (M.Params[PI] == Word) {
          Out += "(" + std::string(trim(Args[PI])) + ")";
          Replaced = true;
          break;
        }
      }
      if (!Replaced)
        Out += Word;
    }
    return Out;
  }
};

} // namespace

Result<std::string> ocl::preprocess(const std::string &Source,
                                    const PreprocessOptions &Opts) {
  PreprocessorImpl Impl(Source, Opts);
  return Impl.run();
}

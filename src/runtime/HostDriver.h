//===- runtime/HostDriver.h - Benchmark execution driver ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host driver of section 5: accepts an OpenCL kernel, generates
/// payloads of configurable size, optionally validates the kernel with
/// the dynamic checker, executes it with instrumentation and reports
/// per-device estimated runtimes for CPU vs. GPU mapping decisions.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_RUNTIME_HOSTDRIVER_H
#define CLGEN_RUNTIME_HOSTDRIVER_H

#include "runtime/Device.h"
#include "runtime/DynamicChecker.h"
#include "runtime/Payload.h"
#include "runtime/PerfModel.h"
#include "support/Channel.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "vm/Bytecode.h"
#include "vm/Interpreter.h"
#include "vm/Profile.h"

#include <string>
#include <vector>

namespace clgen {
namespace store {
class ResultCache;
class FailureLedger;
} // namespace store
namespace runtime {

/// The measurements for one (kernel, dataset) pair on one platform.
struct Measurement {
  double CpuTime = 0.0; // Seconds.
  double GpuTime = 0.0;
  vm::ExecCounters Counters;
  TransferProfile Transfer;
  size_t GlobalSize = 0;
  size_t LocalSize = 0;

  /// True when the GPU mapping is faster.
  bool gpuIsBest() const { return GpuTime < CpuTime; }
  double bestTime() const { return GpuTime < CpuTime ? GpuTime : CpuTime; }
  double timeOn(bool Gpu) const { return Gpu ? GpuTime : CpuTime; }
};

struct DriverOptions {
  size_t GlobalSize = 64 * 1024;
  size_t LocalSize = 64;
  /// Run the section 5.2 dynamic checker before measuring.
  bool RunDynamicCheck = false;
  /// Cap simulated work-groups per launch; counters are rescaled. Keeps
  /// large NDRanges affordable on the simulator.
  size_t MaxSimulatedGroups = 64;
  uint64_t MaxInstructions = 400ull * 1000 * 1000;
  uint64_t Seed = 0xC16E5EED;
  /// Wall-clock watchdog per launch, in milliseconds (0 = off). Catches
  /// hangs the instruction budget cannot — a stalled worker fails with
  /// TrapKind::WatchdogTimeout instead of wedging the batch. Excluded
  /// from cache keys: it can only turn a measurement into a failure,
  /// and failures are never cached.
  uint64_t WatchdogMs = 0;
  /// Bounded retries for transient failure classes (injected faults,
  /// I/O); deterministic classes fail fast. Excluded from cache keys.
  uint32_t MaxRetries = 2;
  /// Base backoff between retries; attempt n sleeps
  /// retryBackoffMs(RetryBackoffMs, n) — exponential (base << n),
  /// deterministic, no jitter, saturating at MaxRetrySleepMs (the shift
  /// is clamped, so large attempt counts neither overflow nor hit
  /// shift-width UB). 0 = retry immediately. Excluded from cache keys.
  uint32_t RetryBackoffMs = 0;
  /// Trap integer division/remainder by zero (TrapKind::DivByZero)
  /// instead of OpenCL's silent zero. Changes kernel-visible semantics,
  /// so it IS part of the measurement cache/ledger key recipe.
  bool TrapDivZero = false;
  /// When non-null, every launch this driver executes accumulates its
  /// opcode/opcode-pair profile here (vm/Profile.h). Pure observation —
  /// excluded from cache keys, never affects measurements — and the
  /// aggregate is identical for any worker count (commutative merges).
  /// Note cache/ledger hits skip execution, so a warm run profiles only
  /// what it actually executed.
  vm::SharedOpcodeProfile *Profile = nullptr;
  /// Instruction dispatch strategy for the measurement VM
  /// (vm::DispatchMode). A pure speed knob: survivor bytes, counters
  /// and trap classifications are bit-identical across modes (the
  /// trap-parity contract), so it is deliberately EXCLUDED from the
  /// measurement cache/ledger key recipe — results cached under one
  /// mode are valid under every other.
  vm::DispatchMode Dispatch = vm::DispatchMode::Auto;
};

/// Compiles and measures \p Source's first kernel on \p P's two devices.
/// Fails when the kernel does not compile, the launch fails, or (when
/// enabled) the dynamic checker rejects it.
Result<Measurement> runBenchmark(const std::string &Source,
                                 const Platform &P,
                                 const DriverOptions &Opts);

/// Same, for an already compiled kernel.
Result<Measurement> runBenchmark(const vm::CompiledKernel &Kernel,
                                 const Platform &P,
                                 const DriverOptions &Opts);

/// runBenchmark with the retry policy applied: transient failures
/// (isTransientTrap — injected faults, I/O) are retried up to
/// Opts.MaxRetries times with deterministic backoff; deterministic
/// failures return immediately. Every batch/streaming path measures
/// through this wrapper. \p AttemptsOut, when given, receives the
/// number of attempts consumed (1 = no retry).
Result<Measurement> runBenchmarkWithRetry(const vm::CompiledKernel &Kernel,
                                          const Platform &P,
                                          const DriverOptions &Opts,
                                          uint32_t *AttemptsOut = nullptr);

/// Ceiling on one retry backoff sleep (30 s): a misconfigured or
/// pathological retry budget degrades to bounded waiting, never to a
/// multi-hour stall.
inline constexpr uint64_t MaxRetrySleepMs = 30'000;

/// The retry backoff schedule: BackoffMs << Attempt, with the shift
/// clamped below the 64-bit width and the product saturated at
/// MaxRetrySleepMs. A plain `BackoffMs << Attempt` is undefined for
/// Attempt >= 32 on the uint32 field (and overflows long before the
/// shift-width limit); this helper is total over the full input range.
uint64_t retryBackoffMs(uint32_t BackoffMs, uint32_t Attempt);

/// Per-kernel effective options for batch position \p I: the payload
/// RNG seed is drawn from the counter-keyed stream I of \p Base (the
/// batch seed). This is THE batch seed derivation — the phased batch,
/// the cached batch, the streaming pipeline and the result-cache key
/// recipe all share it, so a kernel's measurement (and cache entry) is
/// a pure function of its batch index regardless of which path ran it.
DriverOptions batchDriverOptions(const DriverOptions &Opts, const Rng &Base,
                                 size_t I);

/// Measures a batch of kernels, fanned out across a worker pool so
/// driver-side execution keeps pace with the parallel synthesizer
/// (\p Workers: 1 = serial, 0 = hardware concurrency). Results are
/// index-aligned with \p Kernels and deterministic regardless of worker
/// count: kernel i derives its payload RNG by splitting \p Opts.Seed
/// with stream id i.
std::vector<Result<Measurement>>
runBenchmarkBatch(const std::vector<vm::CompiledKernel> &Kernels,
                  const Platform &P, const DriverOptions &Opts,
                  unsigned Workers = 0);

/// Hit/miss tally of one cached batch run (cache-level counters live in
/// store::ResultCache::stats(); this reports just this call).
struct BatchCacheStats {
  size_t Hits = 0;
  size_t Misses = 0;
  /// Kernels skipped as failure-ledger negative hits (neither measured
  /// nor counted as cache hits).
  size_t LedgerHits = 0;
  /// Deterministic failures newly recorded in the ledger by this call.
  size_t LedgerRecords = 0;
};

/// Cached variant: each kernel is content-addressed in \p Cache (keyed
/// by its serialized bytecode, the per-kernel effective driver options
/// including the split payload seed, and the platform's device
/// configs). Hits skip execution entirely; only misses fan out across
/// the worker pool, and each fresh measurement is written back
/// atomically so concurrent batches can share one cache directory.
/// Results are identical to the uncached overload — the simulator is
/// deterministic, so a memoized measurement IS the fresh measurement.
/// Failed runs are not cached; they are re-attempted on the next batch.
/// Concurrent cold batches of one configuration serialize on an
/// advisory lock keyed by the batch's key-set digest (store/Lock.h) and
/// re-probe under it, so racing threads/processes measure each kernel
/// exactly once; fully-warm batches never touch a lock. \p CacheStats
/// tallies what THIS call measured (Misses) vs served from cache
/// (Hits), so exactly-once can be asserted by summing across racers.
/// With a \p Ledger, known-bad kernels are skipped as negative hits
/// (the recorded failure is replayed byte-identically) and fresh
/// deterministic failures are recorded for future runs.
std::vector<Result<Measurement>>
runBenchmarkBatch(const std::vector<vm::CompiledKernel> &Kernels,
                  const Platform &P, const DriverOptions &Opts,
                  unsigned Workers, store::ResultCache &Cache,
                  BatchCacheStats *CacheStats = nullptr,
                  store::FailureLedger *Ledger = nullptr);

/// One unit of driver-side work in the streaming pipeline: a kernel to
/// measure, the per-kernel effective options (already derived via
/// batchDriverOptions from the kernel's accept index), and where the
/// result lands. Jobs own their kernel copy so producers can keep
/// growing their own vectors without invalidating in-flight work.
struct MeasureJob {
  vm::CompiledKernel Kernel;
  DriverOptions Opts;
  /// Where the outcome lands. The producer owns slot storage with
  /// stable addresses (e.g. a deque it grows per accepted kernel, in
  /// accept order — which is what keeps memory proportional to actual
  /// output, not the requested target); slots are unique per job, so
  /// concurrent workers write disjoint memory without locking.
  Result<Measurement> *Slot = nullptr;
  /// Result-cache key when the producer probed the cache at enqueue
  /// time (WriteBack true); ignored otherwise. Hits are resolved by the
  /// producer and never become jobs — a cached measurement must not
  /// occupy a measurement slot.
  uint64_t CacheKey = 0;
  bool WriteBack = false;
  /// The kernel's accept index: stable identity for failpoint keying
  /// and diagnostics, independent of scheduling.
  size_t Index = 0;
};

/// Pull-based measurement loop: pops jobs from \p Jobs until the
/// channel is closed and drained, measuring each kernel and writing the
/// result through job.Slot. Successful measurements of jobs flagged
/// WriteBack are stored to \p Cache under their CacheKey. Intended to
/// run on one or more dedicated consumer threads, overlapped with the
/// producer that feeds the channel.
void runMeasurementLoop(support::Channel<MeasureJob> &Jobs,
                        const Platform &P,
                        store::ResultCache *Cache = nullptr);

} // namespace runtime
} // namespace clgen

#endif // CLGEN_RUNTIME_HOSTDRIVER_H

//===- corpus/Corpus.cpp - Language corpus assembly ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"
#include "ocl/Lexer.h"
#include "store/Archive.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <unordered_set>

using namespace clgen;
using namespace clgen::corpus;

std::string Corpus::allText() const {
  std::string All;
  for (const std::string &E : Entries) {
    All += E;
    All += '\n';
  }
  return All;
}

void Corpus::serialize(store::ArchiveWriter &W) const {
  W.writeU64(Entries.size());
  for (const std::string &E : Entries)
    W.writeString(E);
  W.writeU64(Stats.FilesIn);
  W.writeU64(Stats.FilesAccepted);
  W.writeU64(Stats.FilesRejected);
  for (size_t Count : Stats.RejectionsByReason)
    W.writeU64(Count);
  W.writeU64(Stats.RawLines);
  W.writeU64(Stats.CompilableLines);
  W.writeU64(Stats.FinalLines);
  W.writeU64(Stats.KernelCount);
  W.writeU64(Stats.VocabularyBefore);
  W.writeU64(Stats.VocabularyAfter);
}

Corpus Corpus::deserialize(store::ArchiveReader &R) {
  Corpus C;
  uint64_t EntryCount = R.readU64();
  for (uint64_t I = 0; I < EntryCount && R.ok(); ++I)
    C.Entries.push_back(R.readString());
  C.Stats.FilesIn = R.readU64();
  C.Stats.FilesAccepted = R.readU64();
  C.Stats.FilesRejected = R.readU64();
  for (size_t &Count : C.Stats.RejectionsByReason)
    Count = R.readU64();
  C.Stats.RawLines = R.readU64();
  C.Stats.CompilableLines = R.readU64();
  C.Stats.FinalLines = R.readU64();
  C.Stats.KernelCount = R.readU64();
  C.Stats.VocabularyBefore = R.readU64();
  C.Stats.VocabularyAfter = R.readU64();
  if (!R.ok())
    return Corpus();
  return C;
}

namespace {

/// The per-file ingest stage, hoisted out of the merge so shards can
/// compute it concurrently: filter → count → rename → print. Pure
/// function of (file text, filter options); everything order-dependent
/// (stat accumulation, vocabulary union, deduplication) happens in the
/// file-order merge below.
struct FileIngest {
  bool Accepted = false;
  RejectionReason Reason = RejectionReason::None;
  size_t RawLines = 0;
  size_t CompilableLines = 0;
  size_t FinalLines = 0;
  size_t KernelCount = 0;
  /// Identifiers of the preprocessed / rewritten text, deduplicated
  /// per file (the global union happens at merge time).
  std::vector<std::string> VocabBefore;
  std::vector<std::string> VocabAfter;
  std::string Entry;
};

FileIngest ingestContentFile(const ContentFile &File,
                             const FilterOptions &FilterOpts) {
  FileIngest Out;
  Out.RawLines = countNonBlankLines(File.Text);

  FilterResult FR = filterContentFile(File.Text, FilterOpts);
  Out.Reason = FR.Reason;
  if (!FR.Accepted)
    return Out;
  Out.Accepted = true;
  Out.CompilableLines = countNonBlankLines(FR.Preprocessed);
  Out.KernelCount = FR.Prog->kernelCount();

  // Vocabulary before rewriting (identifiers of the preprocessed,
  // compilable text).
  std::unordered_set<std::string> Seen;
  for (const auto &Tok : ocl::lex(FR.Preprocessed))
    if (Tok.Kind == ocl::TokenKind::Identifier &&
        Seen.insert(Tok.Text).second)
      Out.VocabBefore.push_back(Tok.Text);

  // Steps 2+3: rename + canonical print. The program already passed
  // Sema inside the filter, so renaming operates on FR.Prog directly.
  renameIdentifiers(*FR.Prog);
  Out.Entry = ocl::printProgram(*FR.Prog);
  Seen.clear();
  for (const auto &Tok : ocl::lex(Out.Entry))
    if (Tok.Kind == ocl::TokenKind::Identifier &&
        Seen.insert(Tok.Text).second)
      Out.VocabAfter.push_back(Tok.Text);

  Out.FinalLines = countNonBlankLines(Out.Entry);
  return Out;
}

} // namespace

Corpus corpus::buildCorpus(const std::vector<ContentFile> &Files,
                           const CorpusOptions &Opts) {
  Corpus Out;
  CorpusStats &S = Out.Stats;
  S.FilesIn = Files.size();

  // Stage 1 — sharded ingest: per-file results land in a vector indexed
  // by file position, computed serially or fanned out across the pool.
  std::vector<FileIngest> Ingests(Files.size());
  size_t Workers = std::min(ThreadPool::resolveWorkerCount(Opts.Workers),
                            std::max<size_t>(Files.size(), 1));
  if (Workers <= 1) {
    for (size_t I = 0; I < Files.size(); ++I)
      Ingests[I] = ingestContentFile(Files[I], Opts.Filter);
  } else {
    // Shards are contiguous file ranges; the boundaries are irrelevant
    // to the output (only to scheduling), because the merge below walks
    // Ingests in file order no matter who produced what.
    size_t ShardSize =
        Opts.ShardSize > 0
            ? Opts.ShardSize
            : std::max<size_t>(1, Files.size() / (Workers * 4));
    size_t ShardCount = (Files.size() + ShardSize - 1) / ShardSize;
    ThreadPool Pool(Workers);
    Pool.parallelFor(0, ShardCount, [&](size_t, size_t Shard) {
      size_t Lo = Shard * ShardSize;
      size_t Hi = std::min(Lo + ShardSize, Files.size());
      for (size_t I = Lo; I < Hi; ++I)
        Ingests[I] = ingestContentFile(Files[I], Opts.Filter);
    });
  }

  // Stage 2 — order-preserving merge: statistics accumulate, vocabulary
  // sets union and entries deduplicate in file order, reproducing the
  // serial ingest byte for byte.
  std::unordered_set<std::string> VocabBefore, VocabAfter;
  std::unordered_set<std::string> Dedup;
  for (FileIngest &FI : Ingests) {
    S.RawLines += FI.RawLines;
    if (!FI.Accepted) {
      S.FilesRejected += 1;
      S.RejectionsByReason[static_cast<int>(FI.Reason)] += 1;
      continue;
    }
    S.FilesAccepted += 1;
    S.CompilableLines += FI.CompilableLines;
    S.KernelCount += FI.KernelCount;
    for (std::string &Ident : FI.VocabBefore)
      VocabBefore.insert(std::move(Ident));
    for (std::string &Ident : FI.VocabAfter)
      VocabAfter.insert(std::move(Ident));
    S.FinalLines += FI.FinalLines;
    if (Dedup.insert(FI.Entry).second)
      Out.Entries.push_back(std::move(FI.Entry));
  }

  S.VocabularyBefore = VocabBefore.size();
  S.VocabularyAfter = VocabAfter.size();
  return Out;
}

//===- tests/ocl/PrinterTest.cpp - AST printer tests -------------------------===//

#include "ocl/AstPrinter.h"

#include "ocl/Parser.h"
#include "ocl/Sema.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::ocl;

namespace {

std::string reprint(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  if (!R.ok())
    return "";
  return printProgram(*R.get());
}

} // namespace

TEST(PrinterTest, CanonicalKernelLayout) {
  std::string Out = reprint(
      "__kernel void A(__global float*a,const int b){int i=get_global_id(0);"
      "if(i<b){a[i]*=2.0f;}}");
  EXPECT_EQ(Out,
            "__kernel void A(__global float* a, const int b) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < b) {\n"
            "    a[i] *= 2.0f;\n"
            "  }\n"
            "}\n");
}

TEST(PrinterTest, RoundTripIsFixpoint) {
  // print(parse(print(parse(x)))) == print(parse(x)): the canonical form
  // is stable, which the corpus dedup relies on.
  const char *Src =
      "__kernel void K(__global float4* v, __global float* o, int n) {\n"
      "  float4 acc = (float4)(0.0f);\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    acc += v[i] * 2.0f;\n"
      "  }\n"
      "  o[get_global_id(0)] = acc.x + acc.y + acc.z + acc.w;\n"
      "}\n";
  std::string Once = reprint(Src);
  std::string Twice = reprint(Once);
  EXPECT_EQ(Once, Twice);
}

TEST(PrinterTest, BracesAlwaysInserted) {
  std::string Out = reprint("__kernel void A(int n, __global int* o) {"
                            " if (n) o[0] = 1; else o[0] = 2; }");
  EXPECT_NE(Out.find("if (n) {"), std::string::npos);
  EXPECT_NE(Out.find("} else {"), std::string::npos);
}

TEST(PrinterTest, MinimalParenthesesRespectPrecedence) {
  std::string Out = reprint(
      "__kernel void A(int a, int b, __global int* o) {"
      " o[0] = (a + b) * 2; o[1] = a + b * 2; }");
  EXPECT_NE(Out.find("(a + b) * 2"), std::string::npos);
  EXPECT_NE(Out.find("a + b * 2;"), std::string::npos);
}

TEST(PrinterTest, PreservesSemantics_ParensForShiftInAdd) {
  std::string Out = reprint("__kernel void A(int a, __global int* o) {"
                            " o[0] = (a << 2) + 1; }");
  EXPECT_NE(Out.find("(a << 2) + 1"), std::string::npos);
}

TEST(PrinterTest, FloatLiteralFormats) {
  std::string Out = reprint("__kernel void A(__global float* o) {"
                            " o[0] = 3.5f; o[1] = 2.0f; o[2] = 1e-3f; }");
  EXPECT_NE(Out.find("3.5f"), std::string::npos);
  // A whole-valued float keeps a decimal point.
  EXPECT_NE(Out.find("2f") != std::string::npos ||
                Out.find("2.0f") != std::string::npos,
            false);
  EXPECT_EQ(Out.find("= 2f"), std::string::npos);
}

TEST(PrinterTest, VectorLiteralPrinted) {
  std::string Out = reprint("__kernel void A(__global float4* o) {"
                            " o[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f); }");
  EXPECT_NE(Out.find("(float4)(1.0f, 2.0f, 3.0f, 4.0f)"), std::string::npos);
}

TEST(PrinterTest, LocalArrayDeclaration) {
  std::string Out = reprint("__kernel void A(int n) {"
                            " __local float t[64]; }");
  EXPECT_NE(Out.find("__local float t[64];"), std::string::npos);
}

TEST(PrinterTest, GlobalConstantPrinted) {
  std::string Out = reprint("__constant float Pi = 3.5f;\n"
                            "__kernel void A(__global float* o) {"
                            " o[0] = Pi; }");
  EXPECT_NE(Out.find("__constant float Pi = 3.5f;"), std::string::npos);
}

TEST(PrinterTest, PaperFigure5RewriteShape) {
  // After preprocessing+rewriting, Figure 5b of the paper shows this
  // canonical shape; check the printer produces the same layout for the
  // already-renamed program.
  std::string Out = reprint(
      "inline float A(float a) { return 3.5f * a; }\n"
      "__kernel void B(__global float* b, __global float* c, const int d) {\n"
      "  unsigned int e = get_global_id(0);\n"
      "  if (e < d) { c[e] += A(b[e]); }\n"
      "}\n");
  EXPECT_NE(Out.find("inline float A(float a) {"), std::string::npos);
  EXPECT_NE(
      Out.find(
          "__kernel void B(__global float* b, __global float* c, const int "
          "d) {"),
      std::string::npos);
  EXPECT_NE(Out.find("c[e] += A(b[e]);"), std::string::npos);
}

TEST(PrinterTest, TernaryPrinted) {
  std::string Out = reprint("__kernel void A(int a, int b, __global int* o)"
                            " { o[0] = a > b ? a : b; }");
  EXPECT_NE(Out.find("a > b ? a : b"), std::string::npos);
}

TEST(PrinterTest, DoWhilePrinted) {
  std::string Out = reprint("__kernel void A(int n, __global int* o) {"
                            " int i = 0; do { i++; } while (i < n);"
                            " o[0] = i; }");
  EXPECT_NE(Out.find("do {"), std::string::npos);
  EXPECT_NE(Out.find("} while (i < n);"), std::string::npos);
}

//===- bench/fig2_survey.cpp - Figure 2: benchmark usage survey ---------------===//
//
// Regenerates Figure 2: "The average number of benchmarks used in GPGPU
// research papers, organized by origin" (survey of 25 papers from
// CGO/HiPC/PACT/PPoPP 2013-2016). The seven most popular suites account
// for 92% of results and define the catalogue of Table 3.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "suites/Catalogue.h"

using namespace clgen;

int main() {
  std::printf("%s", sectionBanner("Figure 2: average number of benchmarks "
                                  "used in GPGPU research papers")
                        .c_str());

  auto Survey = suites::gpgpuSurvey();
  BarChart Chart("avg #. benchmarks per paper, by suite of origin", 46);
  double Total = 0.0, Top7 = 0.0;
  for (size_t I = 0; I < Survey.size(); ++I) {
    Chart.addBar(Survey[I].Origin, Survey[I].AvgBenchmarksPerPaper);
    Total += Survey[I].AvgBenchmarksPerPaper;
    if (I < 7)
      Top7 += Survey[I].AvgBenchmarksPerPaper;
  }
  std::printf("%s", Chart.render().c_str());

  std::printf("\nThe 7 most frequently used suites account for %.0f%% of "
              "results\n(paper: 92%%); these are the suites reproduced in "
              "Table 3.\n",
              100.0 * Top7 / Total);
  std::printf("Average benchmarks per paper (sum over suites): %.1f "
              "(paper: 17)\n",
              Total);
  return 0;
}

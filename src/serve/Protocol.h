//===- serve/Protocol.h - clgen-serve wire protocol --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol of the `clgen-serve` pipeline
/// daemon. Transport is a Unix-domain stream socket; on the wire every
/// message is one length-prefixed, checksummed frame:
///
///   [u32 magic 'CSRV'][u32 payload length][payload bytes]
///   [u64 fnv1a64(payload)]
///
/// All integers travel little-endian byte-by-byte (the store's
/// endian-stable convention). The trailer checksum covers the whole
/// payload, so ANY single-byte corruption of a frame — magic, length,
/// payload or trailer — is rejected deterministically; truncation at
/// every possible length is a clean parse error, never a crash or an
/// over-read (the frame fuzz tests in tests/serve/ServeProtocolTest.cpp
/// pin both properties byte-by-byte). Frames are capped at
/// MaxFrameBytes: a corrupt or hostile length field fails fast instead
/// of provoking a giant allocation.
///
/// The payload starts with a protocol version and a message type tag;
/// the remaining fields are per-type. Requests parameterize the
/// SEMANTIC synthesis configuration only (target, seed, temperature) —
/// scheduling (measure workers, queue capacity) is server policy, so
/// two requests that should coalesce cannot be split by client-side
/// scheduling noise. The serve layer persists everything through the
/// existing store archive kinds (the kernel-set Synthesis artifact,
/// Measurement cache entries, the Failure ledger); the wire frame is
/// transient and introduces NO new archive kind.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SERVE_PROTOCOL_H
#define CLGEN_SERVE_PROTOCOL_H

#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace clgen {
namespace serve {

/// Frame magic ('C' 'S' 'R' 'V' on the wire) and protocol version.
/// Bump ProtocolVersion when any payload schema changes shape; servers
/// reject other versions loudly instead of misparsing.
constexpr uint32_t FrameMagic = 0x56525343u; // "CSRV" little-endian.
constexpr uint32_t ProtocolVersion = 1;

/// Hard cap on one frame's payload size. Synthesis responses carry
/// kernel sources and measurement rows; even large batches stay far
/// below this — anything bigger is corruption or abuse.
constexpr uint32_t MaxFrameBytes = 64u * 1024 * 1024;

/// Message type tags. Requests are < 128, responses >= 128.
enum class MessageType : uint8_t {
  PingRequest = 1,
  SynthesizeRequest = 2,
  StatsRequest = 3,
  ShutdownRequest = 4,
  PingResponse = 129,
  SynthesizeResponse = 130,
  StatsResponse = 131,
  ShutdownResponse = 132,
  ErrorResponse = 255,
};

/// A synthesis/measurement request: the semantic configuration of one
/// streaming synthesizeAndMeasure run. Identical field values =>
/// identical results (the engine's determinism contract), which is what
/// makes in-flight coalescing and the kernel-set warm start sound.
struct SynthesizeRequest {
  uint64_t TargetKernels = 0; // Must be positive (validated).
  uint64_t Seed = 0xC17E9;
  double Temperature = 0.5;
};

/// One measurement row of a synthesis response.
struct MeasurementRow {
  bool Ok = false;
  double CpuTime = 0.0; // Seconds (estimated device runtimes).
  double GpuTime = 0.0;
  std::string Error; // Diagnostic when !Ok.
};

/// The response to a SynthesizeRequest, including the per-request work
/// provenance the check_serve fixture asserts on: a warm request (the
/// kernel-set artifact was served from the store) reports
/// TrainedModels == 0, SampleAttempts == 0 and MeasuredKernels == 0
/// while returning byte-identical kernel sources to the cold run.
struct SynthesizeResponse {
  /// True when the kernel set was loaded from the store instead of
  /// sampled (the streaming warm-start path: the channel producer was
  /// an archive reader and the request performed zero sampling).
  bool WarmKernels = false;
  /// Language models trained while serving THIS request (1 for the
  /// request that cold-trained the daemon's model, else 0).
  uint64_t TrainedModels = 0;
  /// Raw model samples drawn while serving this request (0 when warm).
  uint64_t SampleAttempts = 0;
  /// Driver measurements actually executed (cache misses measured);
  /// 0 when every measurement came from the result cache.
  uint64_t MeasuredKernels = 0;
  /// Measurements served from the result cache / failure ledger.
  uint64_t CacheHits = 0;
  uint64_t LedgerHits = 0;
  /// fnv1a64 over the kernel sources in order — the cheap byte-identity
  /// witness clients compare across cold/warm runs.
  uint64_t KernelSetDigest = 0;
  std::vector<std::string> Sources;
  std::vector<MeasurementRow> Measurements; // Index-aligned with Sources.
};

/// Server identity returned by ping.
struct PingResponse {
  uint64_t Pid = 0;
  uint32_t Version = ProtocolVersion;
};

/// One parsed message (the type tag plus whichever body applies).
struct Message {
  MessageType Type = MessageType::ErrorResponse;
  SynthesizeRequest Synth;          // SynthesizeRequest.
  SynthesizeResponse SynthResponse; // SynthesizeResponse.
  PingResponse Ping;                // PingResponse.
  std::string Text;                 // StatsResponse / ErrorResponse.
};

/// Validates the semantic request fields. Target-0 is an explicit usage
/// error (a zero-target run would "succeed" with an empty kernel set —
/// the silent no-op the serve layer refuses to serve).
Status validateRequest(const SynthesizeRequest &Req);

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodePingRequest();
std::vector<uint8_t> encodeStatsRequest();
std::vector<uint8_t> encodeShutdownRequest();
std::vector<uint8_t> encodeSynthesizeRequest(const SynthesizeRequest &Req);
std::vector<uint8_t> encodePingResponse(const PingResponse &Resp);
std::vector<uint8_t> encodeStatsResponse(const std::string &Text);
std::vector<uint8_t> encodeShutdownResponse();
std::vector<uint8_t>
encodeSynthesizeResponse(const SynthesizeResponse &Resp);
std::vector<uint8_t> encodeErrorResponse(const std::string &Message);

/// Parses one complete frame image (header + payload + trailer).
/// Rejects bad magic, impossible lengths, truncation, trailing bytes
/// and checksum mismatches — every read is bounds-checked.
Result<Message> parseFrame(const std::vector<uint8_t> &Frame);

/// Incremental frame assembly for socket readers: call with the bytes
/// received so far; returns the total frame size once the 8-byte header
/// is available (so the reader knows how much to await), 0 while even
/// the header is incomplete, or an error for bad magic / oversized
/// length — the caller drops the connection instead of waiting forever
/// on garbage.
Result<size_t> frameSizeFromHeader(const uint8_t *Data, size_t Size);

//===----------------------------------------------------------------------===//
// Blocking socket I/O
//===----------------------------------------------------------------------===//

/// Writes one complete frame to \p Fd, retrying short writes and EINTR.
Status writeFrame(int Fd, const std::vector<uint8_t> &Frame);

/// Reads one complete frame image from \p Fd (header first, then
/// exactly the advertised remainder). Clean EOF before the first byte
/// reports "connection closed"; EOF mid-frame, bad magic and oversized
/// lengths are distinct errors. The returned bytes still carry the
/// checksum — feed them to parseFrame.
Result<std::vector<uint8_t>> readFrame(int Fd);

} // namespace serve
} // namespace clgen

#endif // CLGEN_SERVE_PROTOCOL_H

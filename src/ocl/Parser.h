//===- ocl/Parser.h - OpenCL C recursive-descent parser ----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the OpenCL C subset. Consumes
/// preprocessed source and produces a Program AST. The parser fails fast:
/// the first syntax error aborts the parse with a diagnostic, which is all
/// the rejection filter needs. Typedefs are resolved during parsing via a
/// typedef table (required to disambiguate casts).
///
/// Unsupported constructs (struct/union/enum definitions, switch, goto,
/// array initialiser lists) produce explicit "unsupported" diagnostics;
/// this mirrors the paper's pipeline, where content files using irregular
/// constructs are discarded by the rejection filter.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_PARSER_H
#define CLGEN_OCL_PARSER_H

#include "ocl/Ast.h"
#include "support/Result.h"

#include <memory>
#include <string>

namespace clgen {
namespace ocl {

/// Parses \p Source (already preprocessed) into a Program.
/// On failure the Result carries a "line N: message" diagnostic.
Result<std::unique_ptr<Program>> parseProgram(const std::string &Source);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_PARSER_H

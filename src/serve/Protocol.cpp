//===- serve/Protocol.cpp - clgen-serve wire protocol ---------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "store/Archive.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace clgen;
using namespace clgen::serve;

namespace {

constexpr size_t HeaderSize = 8;  // magic + payload length.
constexpr size_t TrailerSize = 8; // fnv1a64(payload).

/// Little-endian byte-by-byte payload writer (the store's endian-stable
/// convention, minus the archive container).
class PayloadWriter {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  std::vector<uint8_t> Bytes;
};

/// Bounds-checked little-endian payload reader. Every accessor fails
/// softly (sticky Ok flag) instead of reading past the end, so a
/// truncated payload at ANY offset degrades to a parse error.
class PayloadReader {
public:
  PayloadReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t N = u64();
    if (N > Size - Pos || !need(static_cast<size_t>(N))) {
      Ok = false;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  static_cast<size_t>(N));
    Pos += static_cast<size_t>(N);
    return S;
  }

  bool ok() const { return Ok; }
  bool atEnd() const { return Ok && Pos == Size; }

private:
  bool need(size_t N) {
    if (!Ok || Size - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
};

/// Wraps a finished payload in the frame container: header, payload,
/// checksum trailer.
std::vector<uint8_t> seal(PayloadWriter &&Payload) {
  std::vector<uint8_t> Frame;
  Frame.reserve(HeaderSize + Payload.Bytes.size() + TrailerSize);
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<uint8_t>(FrameMagic >> (8 * I)));
  uint32_t Len = static_cast<uint32_t>(Payload.Bytes.size());
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<uint8_t>(Len >> (8 * I)));
  Frame.insert(Frame.end(), Payload.Bytes.begin(), Payload.Bytes.end());
  uint64_t Checksum = store::fnv1a64(Payload.Bytes.data(), Payload.Bytes.size());
  for (int I = 0; I < 8; ++I)
    Frame.push_back(static_cast<uint8_t>(Checksum >> (8 * I)));
  return Frame;
}

PayloadWriter begin(MessageType Type) {
  PayloadWriter W;
  W.u32(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  return W;
}

} // namespace

Status serve::validateRequest(const SynthesizeRequest &Req) {
  if (Req.TargetKernels == 0)
    return Status::error("target kernel count must be positive: a "
                         "zero-target request would succeed with an empty "
                         "kernel set (usage error)");
  if (!(Req.Temperature > 0.0))
    return Status::error("sampling temperature must be positive");
  return Status();
}

std::vector<uint8_t> serve::encodePingRequest() {
  return seal(begin(MessageType::PingRequest));
}

std::vector<uint8_t> serve::encodeStatsRequest() {
  return seal(begin(MessageType::StatsRequest));
}

std::vector<uint8_t> serve::encodeShutdownRequest() {
  return seal(begin(MessageType::ShutdownRequest));
}

std::vector<uint8_t> serve::encodeShutdownResponse() {
  return seal(begin(MessageType::ShutdownResponse));
}

std::vector<uint8_t>
serve::encodeSynthesizeRequest(const SynthesizeRequest &Req) {
  PayloadWriter W = begin(MessageType::SynthesizeRequest);
  W.u64(Req.TargetKernels);
  W.u64(Req.Seed);
  W.f64(Req.Temperature);
  return seal(std::move(W));
}

std::vector<uint8_t> serve::encodePingResponse(const PingResponse &Resp) {
  PayloadWriter W = begin(MessageType::PingResponse);
  W.u64(Resp.Pid);
  W.u32(Resp.Version);
  return seal(std::move(W));
}

std::vector<uint8_t> serve::encodeStatsResponse(const std::string &Text) {
  PayloadWriter W = begin(MessageType::StatsResponse);
  W.str(Text);
  return seal(std::move(W));
}

std::vector<uint8_t> serve::encodeErrorResponse(const std::string &Message) {
  PayloadWriter W = begin(MessageType::ErrorResponse);
  W.str(Message);
  return seal(std::move(W));
}

std::vector<uint8_t>
serve::encodeSynthesizeResponse(const SynthesizeResponse &Resp) {
  PayloadWriter W = begin(MessageType::SynthesizeResponse);
  W.u8(Resp.WarmKernels ? 1 : 0);
  W.u64(Resp.TrainedModels);
  W.u64(Resp.SampleAttempts);
  W.u64(Resp.MeasuredKernels);
  W.u64(Resp.CacheHits);
  W.u64(Resp.LedgerHits);
  W.u64(Resp.KernelSetDigest);
  W.u64(Resp.Sources.size());
  for (const std::string &S : Resp.Sources)
    W.str(S);
  W.u64(Resp.Measurements.size());
  for (const MeasurementRow &M : Resp.Measurements) {
    W.u8(M.Ok ? 1 : 0);
    W.f64(M.CpuTime);
    W.f64(M.GpuTime);
    W.str(M.Error);
  }
  return seal(std::move(W));
}

Result<size_t> serve::frameSizeFromHeader(const uint8_t *Data, size_t Size) {
  if (Size < HeaderSize)
    return static_cast<size_t>(0);
  uint32_t Magic = 0, Len = 0;
  for (int I = 0; I < 4; ++I)
    Magic |= static_cast<uint32_t>(Data[I]) << (8 * I);
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(Data[4 + I]) << (8 * I);
  if (Magic != FrameMagic)
    return Result<size_t>::error("bad frame magic");
  if (Len > MaxFrameBytes)
    return Result<size_t>::error("frame payload exceeds the " +
                                 std::to_string(MaxFrameBytes) + "-byte cap");
  return HeaderSize + static_cast<size_t>(Len) + TrailerSize;
}

Result<Message> serve::parseFrame(const std::vector<uint8_t> &Frame) {
  Result<size_t> Want = frameSizeFromHeader(Frame.data(), Frame.size());
  if (!Want)
    return Result<Message>::error(Want.errorMessage());
  if (Want.get() == 0 || Frame.size() < Want.get())
    return Result<Message>::error("truncated frame: have " +
                                  std::to_string(Frame.size()) + " bytes");
  if (Frame.size() > Want.get())
    return Result<Message>::error("trailing bytes after frame");

  size_t PayloadSize = Want.get() - HeaderSize - TrailerSize;
  const uint8_t *Payload = Frame.data() + HeaderSize;
  uint64_t Stored = 0;
  for (int I = 0; I < 8; ++I)
    Stored |= static_cast<uint64_t>(Frame[HeaderSize + PayloadSize + I])
              << (8 * I);
  if (Stored != store::fnv1a64(Payload, PayloadSize))
    return Result<Message>::error("frame checksum mismatch");

  PayloadReader R(Payload, PayloadSize);
  uint32_t Version = R.u32();
  if (R.ok() && Version != ProtocolVersion)
    return Result<Message>::error("unsupported protocol version " +
                                  std::to_string(Version));
  Message M;
  M.Type = static_cast<MessageType>(R.u8());
  switch (M.Type) {
  case MessageType::PingRequest:
  case MessageType::StatsRequest:
  case MessageType::ShutdownRequest:
  case MessageType::ShutdownResponse:
    break;
  case MessageType::SynthesizeRequest:
    M.Synth.TargetKernels = R.u64();
    M.Synth.Seed = R.u64();
    M.Synth.Temperature = R.f64();
    break;
  case MessageType::PingResponse:
    M.Ping.Pid = R.u64();
    M.Ping.Version = R.u32();
    break;
  case MessageType::StatsResponse:
  case MessageType::ErrorResponse:
    M.Text = R.str();
    break;
  case MessageType::SynthesizeResponse: {
    SynthesizeResponse &S = M.SynthResponse;
    S.WarmKernels = R.u8() != 0;
    S.TrainedModels = R.u64();
    S.SampleAttempts = R.u64();
    S.MeasuredKernels = R.u64();
    S.CacheHits = R.u64();
    S.LedgerHits = R.u64();
    S.KernelSetDigest = R.u64();
    uint64_t NumSources = R.u64();
    if (NumSources > PayloadSize) // Cheap sanity bound before reserving.
      return Result<Message>::error("implausible source count");
    for (uint64_t I = 0; R.ok() && I < NumSources; ++I)
      S.Sources.push_back(R.str());
    uint64_t NumRows = R.u64();
    if (NumRows > PayloadSize)
      return Result<Message>::error("implausible measurement count");
    for (uint64_t I = 0; R.ok() && I < NumRows; ++I) {
      MeasurementRow Row;
      Row.Ok = R.u8() != 0;
      Row.CpuTime = R.f64();
      Row.GpuTime = R.f64();
      Row.Error = R.str();
      S.Measurements.push_back(std::move(Row));
    }
    break;
  }
  default:
    return Result<Message>::error("unknown message type " +
                                  std::to_string(static_cast<unsigned>(
                                      static_cast<uint8_t>(M.Type))));
  }
  if (!R.atEnd())
    return Result<Message>::error("malformed payload for message type " +
                                  std::to_string(static_cast<unsigned>(
                                      static_cast<uint8_t>(M.Type))));
  return M;
}

Status serve::writeFrame(int Fd, const std::vector<uint8_t> &Frame) {
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t N = ::write(Fd, Frame.data() + Off, Frame.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(std::string("frame write failed: ") +
                           std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return Status();
}

Result<std::vector<uint8_t>> serve::readFrame(int Fd) {
  std::vector<uint8_t> Buf;
  // Read until the 8-byte header tells us the total frame size, then
  // until that size is satisfied. frameSizeFromHeader rejects garbage
  // (bad magic, hostile length) before any large allocation.
  size_t Want = 8;
  while (Buf.size() < Want) {
    size_t Off = Buf.size();
    Buf.resize(Want);
    ssize_t N = ::read(Fd, Buf.data() + Off, Want - Off);
    if (N < 0) {
      if (errno == EINTR) {
        Buf.resize(Off);
        continue;
      }
      return Result<std::vector<uint8_t>>::error(
          std::string("frame read failed: ") + std::strerror(errno));
    }
    if (N == 0)
      return Result<std::vector<uint8_t>>::error(
          Off == 0 ? "connection closed"
                   : "connection closed mid-frame (truncated frame)");
    Buf.resize(Off + static_cast<size_t>(N));
    if (Want == 8 && Buf.size() >= 8) {
      Result<size_t> Total = frameSizeFromHeader(Buf.data(), Buf.size());
      if (!Total)
        return Result<std::vector<uint8_t>>::error(Total.errorMessage());
      Want = Total.get();
    }
  }
  return Buf;
}

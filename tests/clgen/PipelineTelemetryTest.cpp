//===- tests/clgen/PipelineTelemetryTest.cpp - telemetry invariance tests -----===//
//
// The telemetry engine's two pipeline-level contracts:
//
//  1. Observation never perturbs determinism — the streaming pipeline's
//     output (kernel sources and measurement bytes) is byte-identical
//     with tracing on vs off, across worker counts.
//  2. The artifacts are faithful: one trace span per kernel lifecycle
//     stage (sample → accept → enqueue → measure → cache/ledger write),
//     and the Stable subset of the metrics exposition is byte-identical
//     across identical runs.
//
// Everything here also runs in the CLGS_TELEMETRY=OFF tree (the
// check_overhead fixture): assertions about recorded telemetry are
// guarded on telemetryCompiledIn(); the invariance assertions hold
// unconditionally.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/FailureLedger.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_telemetry_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

std::vector<uint8_t> measurementBytes(const Result<runtime::Measurement> &M) {
  store::ArchiveWriter W(store::ArchiveKind::Measurement);
  W.writeBool(M.ok());
  if (M.ok())
    store::serializeMeasurement(W, M.get());
  else
    W.writeString(M.errorMessage());
  return W.finalize();
}

struct Workload {
  std::unique_ptr<ClgenPipeline> Pipeline;
  StreamingOptions Opts;
  runtime::Platform P = runtime::amdPlatform();
};

/// A small streaming workload whose model synthesizes some kernels
/// that fail deterministically at measurement time (out-of-bounds), so
/// a ledger-backed run records real failures.
Workload makeWorkload(size_t TargetKernels) {
  Workload W;
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  W.Pipeline =
      std::make_unique<ClgenPipeline>(ClgenPipeline::train(Files, POpts));
  W.Opts.Synthesis.TargetKernels = TargetKernels;
  W.Opts.Synthesis.MaxAttempts = 20000;
  W.Opts.Driver.GlobalSize = 2048;
  W.Opts.MeasureWorkers = 2;
  return W;
}

void expectSameOutput(const StreamingResult &A, const StreamingResult &B) {
  ASSERT_EQ(A.Kernels.size(), B.Kernels.size());
  ASSERT_EQ(A.Measurements.size(), B.Measurements.size());
  for (size_t I = 0; I < A.Kernels.size(); ++I)
    EXPECT_EQ(A.Kernels[I].Source, B.Kernels[I].Source) << "kernel " << I;
  for (size_t I = 0; I < A.Measurements.size(); ++I)
    EXPECT_EQ(measurementBytes(A.Measurements[I]),
              measurementBytes(B.Measurements[I]))
        << "measurement " << I;
}

} // namespace

TEST(PipelineTelemetryTest, TracingOnOffByteIdentity) {
  Workload W = makeWorkload(/*TargetKernels=*/6);

  // Reference: telemetry passive (no trace session), 2 workers.
  StreamingResult Ref = W.Pipeline->synthesizeAndMeasure(W.P, W.Opts);
  ASSERT_GT(Ref.Kernels.size(), 0u);

  // Traced run, different worker count: both knobs must be inert.
  StreamingOptions Traced = W.Opts;
  Traced.MeasureWorkers = 4;
  support::Trace::start();
  StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, Traced);
  support::Trace::stop();

  expectSameOutput(Ref, Out);
  if (support::telemetryCompiledIn()) {
    EXPECT_GT(support::Trace::eventCount(), 0u)
        << "the traced run must actually have recorded spans";
  }
}

TEST(PipelineTelemetryTest, TraceCoversEveryLifecycleStage) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry sites compiled out";
  Workload W = makeWorkload(/*TargetKernels=*/6);
  ScratchDir Dir("lifecycle");
  store::ResultCache Cache(Dir.str() + "/results");
  store::FailureLedger Ledger(Dir.str() + "/failures");
  W.Opts.Cache = &Cache;
  W.Opts.Ledger = &Ledger;

  support::Trace::start();
  StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, W.Opts);
  support::Trace::stop();
  ASSERT_GT(Out.Kernels.size(), 0u);
  ASSERT_GT(Ledger.stats().Records, 0u)
      << "workload produced no deterministic failures; the ledger.write "
         "coverage is vacuous";

  std::string Json = support::Trace::renderJson();
  for (const char *Stage : {"\"name\":\"sample\"", "\"name\":\"accept\"",
                            "\"name\":\"enqueue\"", "\"name\":\"measure\"",
                            "\"name\":\"cache.write\"",
                            "\"name\":\"ledger.write\""})
    EXPECT_NE(Json.find(Stage), std::string::npos)
        << "missing lifecycle stage " << Stage;
}

TEST(PipelineTelemetryTest, StableExpositionIsByteStableAcrossRuns) {
  Workload W = makeWorkload(/*TargetKernels=*/5);

  auto RunOnce = [&](const std::string &Tag) {
    ScratchDir Dir("expo_" + Tag);
    store::ResultCache Cache(Dir.str() + "/results");
    store::FailureLedger Ledger(Dir.str() + "/failures");
    StreamingOptions Opts = W.Opts;
    Opts.Cache = &Cache;
    Opts.Ledger = &Ledger;
    support::MetricsRegistry::reset();
    StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
    EXPECT_GT(Out.Kernels.size(), 0u);
    return support::MetricsRegistry::renderText({.SkipVolatile = true});
  };

  std::string First = RunOnce("a");
  std::string Second = RunOnce("b");
  EXPECT_EQ(First, Second)
      << "the Stable metric subset must be a pure function of the "
         "workload";
  if (support::telemetryCompiledIn()) {
    EXPECT_NE(First.find("clgen.synthesis.accepted"), std::string::npos)
        << First;
    EXPECT_NE(First.find("clgen.measure.misses"), std::string::npos)
        << First;
    // Volatile timing metrics must not leak into the stable view.
    EXPECT_EQ(First.find("clgen.driver.measure_us"), std::string::npos)
        << First;
  }
}

TEST(PipelineTelemetryTest, CacheCountersMirrorBatchTally) {
  // The unified clgen.measure.* counters: a cold run is all misses, a
  // warm rerun of the same store is all hits — and the registry deltas
  // must agree with the per-call BatchCacheStats.
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry sites compiled out";
  Workload W = makeWorkload(/*TargetKernels=*/5);
  ScratchDir Dir("tally");
  store::ResultCache Cache(Dir.str() + "/results");
  W.Opts.Cache = &Cache;

  support::MetricsRegistry::reset();
  StreamingResult Cold = W.Pipeline->synthesizeAndMeasure(W.P, W.Opts);
  const support::Counter *Hits =
      support::MetricsRegistry::findCounter("clgen.measure.cache_hits");
  const support::Counter *Misses =
      support::MetricsRegistry::findCounter("clgen.measure.misses");
  ASSERT_NE(Misses, nullptr);
  EXPECT_EQ(Misses->value(), Cold.CacheStats.Misses);
  EXPECT_EQ(Hits ? Hits->value() : 0, Cold.CacheStats.Hits);

  support::MetricsRegistry::reset();
  StreamingResult Warm = W.Pipeline->synthesizeAndMeasure(W.P, W.Opts);
  expectSameOutput(Cold, Warm);
  Hits = support::MetricsRegistry::findCounter("clgen.measure.cache_hits");
  ASSERT_NE(Hits, nullptr);
  EXPECT_EQ(Hits->value(), Warm.CacheStats.Hits);
  EXPECT_GT(Warm.CacheStats.Hits, 0u);
}

//===- clgen/Synthesizer.cpp - Benchmark synthesis loop -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Synthesizer.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"

#include <unordered_set>

using namespace clgen;
using namespace clgen::core;

SynthesisResult core::synthesizeKernels(model::LanguageModel &Model,
                                        const SynthesisOptions &Opts) {
  SynthesisResult Result;
  SynthesisStats &Stats = Result.Stats;
  Rng R(Opts.Seed);

  std::string Seed =
      Opts.Spec ? Opts.Spec->seedText() : freeModeSeed();
  size_t MaxAttempts =
      Opts.MaxAttempts > 0 ? Opts.MaxAttempts : Opts.TargetKernels * 100;

  corpus::FilterOptions FilterOpts;
  // Samples are drawn from the normalised corpus distribution; the shim
  // is unnecessary (and injecting it would not hurt, only slow).
  FilterOpts.UseShim = false;

  std::unordered_set<std::string> Dedup;

  while (Result.Kernels.size() < Opts.TargetKernels &&
         Stats.Attempts < MaxAttempts) {
    ++Stats.Attempts;
    std::optional<std::string> Sample =
        sampleKernel(Model, Seed, Opts.Sampling, R);
    if (!Sample) {
      ++Stats.IncompleteSamples;
      continue;
    }

    corpus::FilterResult FR = corpus::filterContentFile(*Sample, FilterOpts);
    if (!FR.Accepted) {
      ++Stats.RejectedByFilter;
      continue;
    }

    // Normalise (the sample is near-normal already, but renaming +
    // canonical printing makes deduplication exact) and keep the first
    // kernel.
    corpus::renameIdentifiers(*FR.Prog);
    std::string Normalised = ocl::printProgram(*FR.Prog);
    if (!Dedup.insert(Normalised).second) {
      ++Stats.Duplicates;
      continue;
    }

    SynthesizedKernel SK;
    SK.Source = std::move(Normalised);
    SK.Kernel = std::move(FR.Kernels.front());
    Result.Kernels.push_back(std::move(SK));
    ++Stats.Accepted;
  }
  return Result;
}

//===- bench/fig8_extended.cpp - Figure 8: the extended model ------------------===//
//
// Regenerates Figure 8: "Speedups of predictions using our extended model
// over Grewe et al. on both experimental platforms." The extended model
// (section 8.2) adds the raw feature values and a static branch count to
// the feature vector, addressing two generalisation failures the
// synthetic benchmarks exposed (sparse F3; feature-space aliasing of
// kernels with different behaviour).
//
// Paper shape targets: with synthetic training + extended features the
// model reaches 3.56x (AMD) and 5.04x (NVIDIA) average speedup over the
// original model's predictions across all seven suites.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/Stats.h"

#include <map>

using namespace clgen;
using namespace clgen::bench;

namespace {

void runPlatform(const runtime::Platform &P,
                 core::ClgenPipeline &Pipeline, size_t SyntheticCount) {
  std::printf("%s", sectionBanner(formatString(
                                      "Figure 8: extended model vs Grewe "
                                      "et al. (%s)",
                                      P.Name.c_str()))
                        .c_str());

  auto Catalogue = suites::buildCatalogue();
  auto Obs = suites::measureCatalogue(Catalogue, P);
  auto Synthetic = measureSynthetic(Pipeline, SyntheticCount, P);
  std::printf("catalogue observations: %zu; synthetic training "
              "observations: %zu\n\n",
              Obs.size(), Synthetic.size());

  // Original model: Grewe features, no synthetic data.
  auto Orig = predict::leaveOneBenchmarkOut(Obs, {},
                                            predict::FeatureSetKind::Grewe);
  // Extended model: raw+branch features, synthetic training data.
  auto Ext = predict::leaveOneBenchmarkOut(
      Obs, Synthetic, predict::FeatureSetKind::Extended);

  // Per-suite geomean of per-observation time(orig)/time(ext).
  std::map<std::string, std::vector<double>> SuiteRatio;
  std::vector<double> AllRatio;
  for (size_t I = 0; I < Obs.size(); ++I) {
    double TOrig = Obs[I].timeFor(Orig.Predictions[I]);
    double TExt = Obs[I].timeFor(Ext.Predictions[I]);
    double Ratio = TOrig / TExt;
    SuiteRatio[Obs[I].Suite].push_back(Ratio);
    AllRatio.push_back(Ratio);
  }

  TextTable T;
  T.setHeader({"suite", "speedup of extended model over Grewe et al.",
               "oracle perf: Grewe", "oracle perf: extended"});
  for (const auto &Suite : suites::suiteNames()) {
    auto Test = bySuite(Obs, Suite);
    std::vector<int> OrigP, ExtP;
    for (size_t I = 0; I < Obs.size(); ++I) {
      if (Obs[I].Suite != Suite)
        continue;
      OrigP.push_back(Orig.Predictions[I]);
      ExtP.push_back(Ext.Predictions[I]);
    }
    T.addRow({Suite, formatString("%.2fx", geomean(SuiteRatio[Suite])),
              formatPercent(
                  predict::performanceRelativeToOracle(Test, OrigP)),
              formatPercent(
                  predict::performanceRelativeToOracle(Test, ExtP))});
  }
  T.addRow({"All", formatString("%.2fx", geomean(AllRatio)),
            formatPercent(predict::performanceRelativeToOracle(
                Obs, Orig.Predictions)),
            formatPercent(predict::performanceRelativeToOracle(
                Obs, Ext.Predictions))});
  std::printf("%s", T.render().c_str());

  std::printf("\nAccuracy: %.1f%% (Grewe) -> %.1f%% (extended + "
              "synthetic)\n",
              100.0 * predict::accuracy(Obs, Orig.Predictions),
              100.0 * predict::accuracy(Obs, Ext.Predictions));
  std::printf("Average speedup of extended-model predictions: %.2fx "
              "arithmetic / %.2fx geometric\n",
              mean(AllRatio), geomean(AllRatio));
}

} // namespace

int main() {
  std::printf("training CLgen on the mined corpus...\n");
  auto Pipeline = trainedPipeline();
  const size_t SyntheticCount = 400;

  runPlatform(runtime::amdPlatform(), Pipeline, SyntheticCount);
  runPlatform(runtime::nvidiaPlatform(), Pipeline, SyntheticCount);

  std::printf("\nPaper: 3.56x on AMD, 5.04x on NVIDIA across the 7-suite "
              "test set\n(tenfold larger than the NPB-only evaluation).\n");
  return 0;
}

//===- ocl/AstPrinter.h - Style-normalised source printer --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints an AST back to OpenCL C in a single canonical style
/// (step 3 of the code rewriter in section 4.1: "a variant of the Google
/// C++ code style is enforced to ensure consistent use of braces,
/// parentheses, and white space"). Round-tripping any program through
/// parse -> print yields byte-identical text, which the corpus pipeline
/// relies on for deduplication.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_ASTPRINTER_H
#define CLGEN_OCL_ASTPRINTER_H

#include "ocl/Ast.h"

#include <string>

namespace clgen {
namespace ocl {

/// Renders the whole translation unit.
std::string printProgram(const Program &P);

/// Renders one function definition.
std::string printFunction(const FunctionDecl &F);

/// Renders a single expression (minimal parentheses).
std::string printExpr(const Expr &E);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_ASTPRINTER_H

//===- tests/model/LstmTrainTest.cpp - data-parallel LSTM training ------------===//
//
// Determinism contract of the data-parallel training engine: trained
// weights are bit-identical (compared as store::Serialization archive
// images) for every TrainOptions::Workers value, the reduced gradients
// match the serial reduction bit-for-bit (via the GradientCapture
// hook), and the scheduling/semantic knob split is enforced at the
// pipeline fingerprint level.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"
#include "model/LstmModel.h"
#include "store/Archive.h"
#include "store/Serialization.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace clgen;
using namespace clgen::model;

namespace {

/// A small but non-trivial training corpus: enough chunks that a lane
/// partition is ragged (exercises the final partial optimizer step).
std::vector<std::string> trainingCorpus() {
  std::vector<std::string> Entries;
  for (int I = 0; I < 6; ++I)
    Entries.push_back("__kernel void k" + std::to_string(I) +
                      "(__global float* a, const int n) {\n"
                      "  int i = get_global_id(0);\n"
                      "  if (i < n) { a[i] = a[i] * 2.0f + 1.0f; }\n"
                      "}\n");
  return Entries;
}

LstmOptions smallOptions(int BatchLanes) {
  LstmOptions Opts;
  Opts.Layers = 2;
  Opts.HiddenSize = 12;
  Opts.Epochs = 2;
  Opts.SequenceLength = 24;
  Opts.BatchLanes = BatchLanes;
  return Opts;
}

/// The byte image weight comparisons run over: the full serialized
/// model archive (options + vocabulary + every weight tensor as
/// IEEE-754 bit patterns).
std::vector<uint8_t> weightImage(const LstmModel &M) {
  store::ArchiveWriter W(store::ArchiveKind::Model);
  M.serialize(W);
  return W.finalize();
}

LstmModel trainWith(const LstmOptions &Opts, unsigned Workers,
                    const std::vector<std::string> &Entries) {
  LstmModel M(Opts);
  TrainOptions TOpts;
  TOpts.Workers = Workers;
  M.train(Entries, TOpts);
  return M;
}

unsigned hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 4;
}

TEST(LstmTrainTest, WeightsBitIdenticalAcrossWorkerCounts) {
  auto Entries = trainingCorpus();
  LstmOptions Opts = smallOptions(/*BatchLanes=*/4);
  auto Reference = weightImage(trainWith(Opts, 1, Entries));
  ASSERT_FALSE(Reference.empty());
  for (unsigned Workers : {2u, 3u, hardwareWorkers(), 0u}) {
    auto Image = weightImage(trainWith(Opts, Workers, Entries));
    EXPECT_EQ(Image, Reference)
        << "trained weights diverged at Workers=" << Workers;
  }
}

TEST(LstmTrainTest, SingleLaneParallelMatchesLegacySerialOverload) {
  // BatchLanes == 1 is the classic chunk-sequential SGD; the worker
  // pool must not change a single bit of it, and the legacy
  // train(Entries, Progress) overload must keep producing the same
  // model as the TrainOptions path.
  auto Entries = trainingCorpus();
  LstmOptions Opts = smallOptions(/*BatchLanes=*/1);
  LstmModel Legacy(Opts);
  int Epochs = 0;
  Legacy.train(Entries, [&](int, double) { ++Epochs; });
  EXPECT_EQ(Epochs, Opts.Epochs);
  auto LegacyImage = weightImage(Legacy);
  for (unsigned Workers : {1u, 2u, hardwareWorkers()}) {
    auto Image = weightImage(trainWith(Opts, Workers, Entries));
    EXPECT_EQ(Image, LegacyImage)
        << "single-lane training diverged at Workers=" << Workers;
  }
}

TEST(LstmTrainTest, ReducedGradientsMatchSerialBitForBit) {
  // GradientCapture hook: the merged (post-reduction, pre-clip)
  // gradient of the last optimizer step must be bit-identical between
  // the inline serial path and the thread-pool path.
  auto Entries = trainingCorpus();
  LstmOptions Opts = smallOptions(/*BatchLanes=*/3);

  auto CaptureWith = [&](unsigned Workers) {
    LstmModel M(Opts);
    M.setGradientCapture(true);
    TrainOptions TOpts;
    TOpts.Workers = Workers;
    M.train(Entries, TOpts);
    auto Image = M.capturedGradientImage();
    // Guard against the hook silently dying: a never-filled capture
    // buffer would still serialize to a small deterministic archive, so
    // equality alone could pass vacuously. A real capture carries one
    // f32 per parameter.
    EXPECT_GT(Image.size(), M.parameterCount() * sizeof(float));
    return Image;
  };

  auto Serial = CaptureWith(1);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(CaptureWith(2), Serial);
  EXPECT_EQ(CaptureWith(hardwareWorkers()), Serial);
}

TEST(LstmTrainTest, BatchLanesIsSemanticNotScheduling) {
  // Different lane counts are different training algorithms (different
  // batching), so they must NOT produce identical weights — that is why
  // BatchLanes is fingerprinted and Workers is not.
  auto Entries = trainingCorpus();
  auto OneLane = weightImage(trainWith(smallOptions(1), 1, Entries));
  auto FourLanes = weightImage(trainWith(smallOptions(4), 1, Entries));
  EXPECT_NE(OneLane, FourLanes);
}

TEST(LstmTrainTest, LanesClampToChunkCountOnTinyCorpus) {
  // Fewer chunks than lanes: the partition clamps, training still
  // converges deterministically across worker counts.
  std::vector<std::string> Tiny = {"abab"};
  LstmOptions Opts = smallOptions(/*BatchLanes=*/8);
  Opts.SequenceLength = 4;
  auto Reference = weightImage(trainWith(Opts, 1, Tiny));
  EXPECT_EQ(weightImage(trainWith(Opts, 4, Tiny)), Reference);
}

TEST(LstmTrainTest, BatchLanesClampedToValidRangeAtConstruction) {
  // Out-of-range lane counts are clamped where the model is configured,
  // so a trained model can never serialize an options block its own
  // deserializer rejects (which would make every warm start a miss).
  auto Entries = trainingCorpus();
  auto OneLane = weightImage(trainWith(smallOptions(1), 1, Entries));
  EXPECT_EQ(weightImage(trainWith(smallOptions(0), 1, Entries)), OneLane);
  EXPECT_EQ(weightImage(trainWith(smallOptions(-7), 1, Entries)), OneLane);

  LstmModel Huge = trainWith(
      smallOptions(LstmOptions::MaxBatchLanes + 5), 2, Entries);
  store::ArchiveWriter W(store::ArchiveKind::Model);
  Huge.serialize(W);
  auto Opened = store::ArchiveReader::fromBytes(W.finalize(),
                                                store::ArchiveKind::Model);
  ASSERT_TRUE(Opened.ok()) << Opened.errorMessage();
  store::ArchiveReader R = Opened.take();
  (void)LstmModel::deserialize(R);
  EXPECT_TRUE(R.finish().ok()) << R.finish().errorMessage();
}

TEST(LstmTrainTest, ParallelTrainingReducesLoss) {
  LstmOptions Opts;
  Opts.Layers = 1;
  Opts.HiddenSize = 24;
  Opts.Epochs = 20;
  Opts.SequenceLength = 16;
  // The accumulated update averages over BatchLanes chunks, so the
  // batch regime wants a proportionally larger rate than 1-lane SGD.
  Opts.LearningRate = 0.4f;
  Opts.BatchLanes = 4;
  LstmModel M(Opts);
  TrainOptions TOpts;
  TOpts.Workers = 2;
  std::vector<double> Losses;
  TOpts.Progress = [&](int, double Loss) { Losses.push_back(Loss); };
  std::string Text;
  for (int I = 0; I < 8; ++I)
    Text += "abababababababab";
  M.train({Text}, TOpts);
  ASSERT_GE(Losses.size(), 2u);
  EXPECT_LT(Losses.back(), Losses.front() * 0.8);
}

TEST(LstmTrainTest, SerializedRoundTripPreservesBatchLanes) {
  auto Entries = trainingCorpus();
  LstmModel M = trainWith(smallOptions(3), 2, Entries);
  store::ArchiveWriter W(store::ArchiveKind::Model);
  M.serialize(W);
  auto Opened = store::ArchiveReader::fromBytes(W.finalize(),
                                                store::ArchiveKind::Model);
  ASSERT_TRUE(Opened.ok()) << Opened.errorMessage();
  store::ArchiveReader R = Opened.take();
  LstmModel Loaded = LstmModel::deserialize(R);
  ASSERT_TRUE(R.finish().ok()) << R.finish().errorMessage();
  EXPECT_EQ(weightImage(Loaded), weightImage(M));
}

//===----------------------------------------------------------------------===//
// Pipeline integration: scheduling vs semantic knobs
//===----------------------------------------------------------------------===//

std::vector<corpus::ContentFile> pipelineFiles() {
  std::vector<corpus::ContentFile> Files;
  corpus::ContentFile F;
  F.Path = "a.cl";
  F.Text = "__kernel void scale(__global float* a, const int n) {\n"
           "  int i = get_global_id(0);\n"
           "  if (i < n) { a[i] = a[i] * 2.0f; }\n"
           "}\n";
  Files.push_back(F);
  return Files;
}

core::PipelineOptions lstmPipelineOptions(int BatchLanes,
                                          unsigned Workers) {
  core::PipelineOptions POpts;
  POpts.Backend = core::ModelBackend::Lstm;
  POpts.Lstm = smallOptions(BatchLanes);
  POpts.Lstm.Epochs = 1;
  POpts.Train.Workers = Workers;
  return POpts;
}

TEST(LstmTrainTest, PipelineFingerprintExcludesTrainWorkers) {
  auto Files = pipelineFiles();
  uint64_t W1 = core::ClgenPipeline::fingerprint(
      Files, lstmPipelineOptions(4, 1));
  uint64_t W8 = core::ClgenPipeline::fingerprint(
      Files, lstmPipelineOptions(4, 8));
  EXPECT_EQ(W1, W8) << "Workers is a scheduling knob: same fingerprint";

  uint64_t Lanes1 = core::ClgenPipeline::fingerprint(
      Files, lstmPipelineOptions(1, 1));
  EXPECT_NE(W1, Lanes1) << "BatchLanes is semantic: distinct fingerprint";
}

TEST(LstmTrainTest, TrainOrLoadWarmStartsAcrossWorkerCounts) {
  auto Dir = std::filesystem::temp_directory_path() /
             "clgen_lstm_train_warm_start";
  std::filesystem::remove_all(Dir);
  auto Files = pipelineFiles();

  core::TrainOrLoadInfo Cold;
  auto First = core::ClgenPipeline::trainOrLoad(
      Dir.string(), Files, lstmPipelineOptions(4, 2), &Cold);
  ASSERT_TRUE(First.ok()) << First.errorMessage();
  EXPECT_FALSE(Cold.LoadedModel);

  // A different worker count must hit the same artifact (its weights
  // are bit-identical by the training contract, so serving the stored
  // model is exact, not approximate).
  core::TrainOrLoadInfo Warm;
  auto Second = core::ClgenPipeline::trainOrLoad(
      Dir.string(), Files, lstmPipelineOptions(4, 1), &Warm);
  ASSERT_TRUE(Second.ok()) << Second.errorMessage();
  EXPECT_TRUE(Warm.LoadedModel);
  EXPECT_EQ(Warm.Fingerprint, Cold.Fingerprint);

  auto &Fresh = static_cast<model::LstmModel &>(
      First.get().languageModel());
  auto &Loaded = static_cast<model::LstmModel &>(
      Second.get().languageModel());
  EXPECT_EQ(weightImage(Loaded), weightImage(Fresh));
  std::filesystem::remove_all(Dir);
}

} // namespace

//===- support/Stats.cpp - Summary statistics ------------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace clgen;

double clgen::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double clgen::stdev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double SumSq = 0.0;
  for (double V : Values)
    SumSq += (V - M) * (V - M);
  return std::sqrt(SumSq / static_cast<double>(Values.size() - 1));
}

double clgen::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double clgen::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double clgen::percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0.0;
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values[0];
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double clgen::minOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::min_element(Values.begin(), Values.end());
}

double clgen::maxOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::max_element(Values.begin(), Values.end());
}

//===- tests/support/ThreadPoolTest.cpp - ThreadPool unit tests --------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace clgen;

TEST(ThreadPoolTest, ResolveWorkerCount) {
  EXPECT_EQ(ThreadPool::resolveWorkerCount(3), 3u);
  EXPECT_GE(ThreadPool::resolveWorkerCount(0), 1u);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  const size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(0, N, [&](size_t, size_t I) { Hits[I] += 1; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, HandlesSubrange) {
  ThreadPool Pool(2);
  std::vector<std::atomic<int>> Hits(10);
  Pool.parallelFor(3, 7, [&](size_t, size_t I) { Hits[I] += 1; });
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(Hits[I].load(), I >= 3 && I < 7 ? 1 : 0);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.parallelFor(5, 5, [&](size_t, size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool Pool(3);
  std::atomic<bool> Ok{true};
  Pool.parallelFor(0, 200, [&](size_t Worker, size_t) {
    if (Worker >= 3)
      Ok = false;
  });
  EXPECT_TRUE(Ok.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 100,
                                [&](size_t, size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives the failure and accepts new work.
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 50, [&](size_t, size_t) { Count += 1; });
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, OneWorkerMatchesEightWorkers) {
  // Index-keyed results are independent of worker count and scheduling.
  auto Compute = [](size_t Workers) {
    ThreadPool Pool(Workers);
    std::vector<uint64_t> Out(257);
    Pool.parallelFor(0, Out.size(), [&](size_t, size_t I) {
      uint64_t X = I * 0x9E3779B97F4A7C15ull;
      X ^= X >> 29;
      Out[I] = X;
    });
    return Out;
  };
  auto Serial = Compute(1);
  auto Parallel = Compute(8);
  EXPECT_EQ(Serial, Parallel);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> Sum{0};
  for (int Round = 0; Round < 20; ++Round)
    Pool.parallelFor(0, 100, [&](size_t, size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 20u * (99u * 100u / 2u));
}

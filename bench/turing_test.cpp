//===- bench/turing_test.cpp - Section 6.1: human-or-machine panel ------------===//
//
// Regenerates the qualitative evaluation of section 6.1: fifteen
// volunteers judged ten kernels each as hand-written or machine-made.
// Ten judged CLgen output (average score 52%, stdev 17% — no better than
// chance); five formed the control group judging CLSmith output (96%,
// stdev 9%, no false positives). Judges are simulated (see
// src/turing/TuringTest.h for the substitution).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "corpus/Rewriter.h"

#include "turing/TuringTest.h"

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s", sectionBanner("Section 6.1: likeness to hand-written "
                                  "code (simulated panel)")
                        .c_str());

  auto Pipeline = trainedPipeline();

  // The human pool is held out from the reference model's training
  // corpus (a second snapshot of the repository distribution): judges
  // compare kernels against their sense of "normal OpenCL", not against
  // code they have memorised.
  githubsim::GithubSimOptions HoldoutOpts;
  HoldoutOpts.FileCount = 400;
  HoldoutOpts.Seed = 0x0707DA7A;
  auto HumanPool =
      corpus::buildCorpus(githubsim::mineGithub(HoldoutOpts)).Entries;

  // CLgen pool: free-of-spec synthesis for variety.
  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 60;
  SOpts.Sampling.Temperature = 0.55;
  auto Synth = Pipeline.synthesize(SOpts);
  std::vector<std::string> ClgenPool;
  for (const auto &SK : Synth.Kernels)
    ClgenPool.push_back(SK.Source);

  // CLSmith pool, style-normalised like everything shown to judges.
  std::vector<std::string> ClsmithPool;
  for (const auto &Src : clsmith::generateKernels(60)) {
    auto Rewritten = corpus::rewriteSource(Src);
    ClsmithPool.push_back(Rewritten.ok() ? Rewritten.get() : Src);
  }

  std::printf("pools: %zu human, %zu CLgen, %zu CLSmith kernels\n",
              HumanPool.size(), ClgenPool.size(), ClsmithPool.size());

  turing::PanelOptions Experiment;
  Experiment.Participants = 10;
  turing::PanelOptions Control;
  Control.Participants = 5;
  Control.Seed = 0xC0117701;

  auto ClgenResult =
      turing::runPanel(HumanPool, ClgenPool, Pipeline.languageModel(),
                       Experiment);
  auto ControlResult =
      turing::runPanel(HumanPool, ClsmithPool, Pipeline.languageModel(),
                       Control);

  TextTable T;
  T.setHeader({"group", "participants", "mean score", "stdev",
               "false positives", "paper"});
  T.addRow({"CLgen", std::to_string(Experiment.Participants),
            formatPercent(ClgenResult.MeanAccuracy),
            formatPercent(ClgenResult.StdevAccuracy),
            std::to_string(ClgenResult.FalsePositives), "52% (sd 17%)"});
  T.addRow({"CLSmith (control)", std::to_string(Control.Participants),
            formatPercent(ControlResult.MeanAccuracy),
            formatPercent(ControlResult.StdevAccuracy),
            std::to_string(ControlResult.FalsePositives), "96% (sd 9%)"});
  std::printf("%s", T.render().c_str());

  std::printf("\nCLgen judged at %s: indistinguishable from hand-written "
              "code\n(human judges score no better than chance).\n",
              formatPercent(ClgenResult.MeanAccuracy).c_str());
  std::printf("CLSmith flagged at %s: generated test programs have "
              "obvious tells\n(e.g. their only input is a single ulong "
              "pointer).\n",
              formatPercent(ControlResult.MeanAccuracy).c_str());
  return 0;
}

//===- tests/predict/ExperimentTest.cpp - Experiment engine tests -------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tier for predict::Experiment: scheduling-knob independence (the
// determinism contract), the cold -> warm store round trip with its
// zero-work provenance guarantee, key sensitivity, and corruption
// degrading to an honest miss. The heavier byte-for-byte matrix against
// checked-in goldens lives in ExperimentGoldenTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "predict/Experiment.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>

using namespace clgen;
using namespace clgen::predict;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_experiment_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

/// The smallest configuration that still exercises every stage: a tiny
/// corpus, two real suites, a few synthetic kernels.
ExperimentOptions tinyOptions() {
  ExperimentOptions O;
  O.CorpusFiles = 400; // Smallest corpus that clears the dynamic checker.
  O.NGramOrder = 16;
  O.Streaming.Synthesis.TargetKernels = 3;
  O.Streaming.Synthesis.MaxAttempts = 1800;
  O.Streaming.Synthesis.Sampling.Temperature = 0.55;
  O.Streaming.Driver.GlobalSize = 2048;
  O.Streaming.Driver.MaxSimulatedGroups = 4;
  O.Streaming.Driver.RunDynamicCheck = true;
  O.Streaming.RefillFailures = true;
  O.Suites = {"Parboil", "NVIDIA SDK"};
  O.Runner.MaxSimulatedGroups = 4;
  O.KFold.Folds = 3;
  return O;
}

void expectSameResult(const ExperimentResult &A, const ExperimentResult &B) {
  EXPECT_EQ(A.Real.size(), B.Real.size());
  EXPECT_EQ(A.Synthetic.size(), B.Synthetic.size());
  EXPECT_EQ(A.Baseline.Predictions, B.Baseline.Predictions);
  EXPECT_EQ(A.Baseline.FoldOf, B.Baseline.FoldOf);
  EXPECT_EQ(A.Baseline.FoldsTrained, B.Baseline.FoldsTrained);
  EXPECT_EQ(A.Augmented.Predictions, B.Augmented.Predictions);
  EXPECT_EQ(A.Augmented.FoldOf, B.Augmented.FoldOf);
  EXPECT_EQ(A.Metrics.StaticLabel, B.Metrics.StaticLabel);
  EXPECT_EQ(A.Metrics.BaselineAccuracy, B.Metrics.BaselineAccuracy);
  EXPECT_EQ(A.Metrics.BaselineOracle, B.Metrics.BaselineOracle);
  EXPECT_EQ(A.Metrics.BaselineSpeedup, B.Metrics.BaselineSpeedup);
  EXPECT_EQ(A.Metrics.AugmentedAccuracy, B.Metrics.AugmentedAccuracy);
  EXPECT_EQ(A.Metrics.AugmentedOracle, B.Metrics.AugmentedOracle);
  EXPECT_EQ(A.Metrics.AugmentedSpeedup, B.Metrics.AugmentedSpeedup);
  EXPECT_EQ(A.Table1, B.Table1);
  EXPECT_EQ(A.Fig9, B.Fig9);
}

TEST(ExperimentTest, ProducesEveryStageOutput) {
  ExperimentResult R = runExperiment(tinyOptions());
  EXPECT_FALSE(R.Real.empty());
  EXPECT_FALSE(R.Synthetic.empty());
  EXPECT_EQ(R.Baseline.Predictions.size(), R.Real.size());
  EXPECT_EQ(R.Augmented.Predictions.size(), R.Real.size());
  EXPECT_GT(R.Baseline.FoldsTrained, 0u);
  EXPECT_FALSE(R.Table1.empty());
  EXPECT_FALSE(R.Fig9.empty());
  EXPECT_TRUE(R.Model.trained());
  EXPECT_FALSE(R.Provenance.Warm);
  EXPECT_GT(R.Provenance.TrainedModels, 0u);
  EXPECT_GT(R.Provenance.MeasuredKernels, 0u);
  // Synthetic rows carry the reserved suite name, never a real one.
  for (const Observation &O : R.Synthetic)
    EXPECT_EQ(O.Suite, "clgen");
}

TEST(ExperimentTest, SchedulingKnobsCannotChangeAnyOutput) {
  ExperimentOptions Serial = tinyOptions();
  ExperimentOptions Parallel = tinyOptions();
  Parallel.Workers = 0; // Hardware concurrency.
  Parallel.KFold.Workers = 3;
  Parallel.Streaming.MeasureWorkers = 3;
  Parallel.Streaming.QueueCapacity = 2;
  Parallel.Streaming.Synthesis.Workers = 2;
  ASSERT_EQ(experimentKey(Serial), experimentKey(Parallel));
  expectSameResult(runExperiment(Serial), runExperiment(Parallel));
}

TEST(ExperimentTest, KeyTracksSemanticOptionsOnly) {
  ExperimentOptions Base = tinyOptions();
  uint64_t Key = experimentKey(Base);

  ExperimentOptions Folds = Base;
  Folds.KFold.Folds = 4;
  EXPECT_NE(experimentKey(Folds), Key);

  ExperimentOptions Seed = Base;
  Seed.KFold.Seed += 1;
  EXPECT_NE(experimentKey(Seed), Key);

  ExperimentOptions Kernels = Base;
  Kernels.Streaming.Synthesis.TargetKernels += 1;
  EXPECT_NE(experimentKey(Kernels), Key);

  ExperimentOptions Suites = Base;
  Suites.Suites = {"Parboil"};
  EXPECT_NE(experimentKey(Suites), Key);

  ExperimentOptions Corpus = Base;
  Corpus.CorpusFiles += 10;
  EXPECT_NE(experimentKey(Corpus), Key);
}

TEST(ExperimentTest, ColdRunThenWarmLoadIsByteIdenticalAndWorkFree) {
  ScratchDir Dir("cold_warm");
  ExperimentOptions Opts = tinyOptions();

  auto Cold = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.errorMessage();
  EXPECT_FALSE(Cold.get().Provenance.Warm);
  EXPECT_GT(Cold.get().Provenance.TrainedModels, 0u);
  EXPECT_GT(Cold.get().Provenance.MeasuredKernels, 0u);

  auto Warm = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.errorMessage();
  EXPECT_TRUE(Warm.get().Provenance.Warm);
  EXPECT_EQ(Warm.get().Provenance.TrainedModels, 0u);
  EXPECT_EQ(Warm.get().Provenance.MeasuredKernels, 0u);
  expectSameResult(Cold.get(), Warm.get());

  // The warm model predicts identically to the cold one.
  std::vector<Observation> All = Cold.get().Real;
  for (const Observation &O : All)
    EXPECT_EQ(Warm.get().Model.predict(featureVector(O, Opts.Kind)),
              Cold.get().Model.predict(featureVector(O, Opts.Kind)));
}

TEST(ExperimentTest, LoadFailsOnColdStoreWithoutDoingWork) {
  ScratchDir Dir("cold_probe");
  auto Probe = loadExperiment(Dir.str(), tinyOptions());
  EXPECT_FALSE(Probe.ok());
}

TEST(ExperimentTest, CorruptArchiveDegradesToHonestMiss) {
  ScratchDir Dir("corrupt");
  ExperimentOptions Opts = tinyOptions();
  auto Cold = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.errorMessage();
  ASSERT_TRUE(loadExperiment(Dir.str(), Opts).ok());

  // Flip one payload byte of the predictor archive: the checksum must
  // reject it and the probe must fail instead of serving garbage.
  std::string Path;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.str()))
    if (Entry.path().filename().string().rfind("predictor-", 0) == 0)
      Path = Entry.path().string();
  ASSERT_FALSE(Path.empty());
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    F.seekp(Size / 2);
    char B = 0;
    F.seekg(Size / 2);
    F.read(&B, 1);
    B ^= 0x40;
    F.seekp(Size / 2);
    F.write(&B, 1);
  }
  EXPECT_FALSE(loadExperiment(Dir.str(), Opts).ok());

  // And runOrLoad recovers by recomputing + republishing.
  auto Recovered = runOrLoadExperiment(Dir.str(), Opts);
  ASSERT_TRUE(Recovered.ok()) << Recovered.errorMessage();
  EXPECT_FALSE(Recovered.get().Provenance.Warm);
  expectSameResult(Cold.get(), Recovered.get());
  EXPECT_TRUE(loadExperiment(Dir.str(), Opts).ok());
}

} // namespace

//===- tests/ocl/ParserTest.cpp - parser unit tests --------------------------===//

#include "ocl/Parser.h"

#include "ocl/Casting.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::ocl;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  if (!R.ok())
    return nullptr;
  return R.take();
}

} // namespace

TEST(ParserTest, MinimalKernel) {
  auto P = parseOk("__kernel void A(__global float* a) { a[0] = 1.0f; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_TRUE(P->Functions[0]->IsKernel);
  EXPECT_EQ(P->Functions[0]->Name, "A");
  ASSERT_EQ(P->Functions[0]->Params.size(), 1u);
  EXPECT_TRUE(P->Functions[0]->Params[0].Ty.Pointer);
  EXPECT_EQ(P->Functions[0]->Params[0].Ty.AS, AddrSpace::Global);
}

TEST(ParserTest, KernelWithoutUnderscores) {
  auto P = parseOk("kernel void K(global int* x) { x[0] = 1; }");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->Functions[0]->IsKernel);
}

TEST(ParserTest, HelperFunction) {
  auto P = parseOk("inline float f(float x) { return x * 2.0f; }");
  ASSERT_TRUE(P);
  EXPECT_FALSE(P->Functions[0]->IsKernel);
  EXPECT_TRUE(P->Functions[0]->IsInline);
  EXPECT_EQ(P->Functions[0]->ReturnTy.S, Scalar::Float);
}

TEST(ParserTest, VectorTypes) {
  auto P = parseOk("__kernel void A(__global float4* a, int8 b) {}");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Functions[0]->Params[0].Ty.VecWidth, 4);
  EXPECT_EQ(P->Functions[0]->Params[1].Ty.VecWidth, 8);
  EXPECT_EQ(P->Functions[0]->Params[1].Ty.S, Scalar::Int);
}

TEST(ParserTest, UnsignedSpellings) {
  auto P = parseOk("__kernel void A(unsigned int a, unsigned b, uint c) {}");
  ASSERT_TRUE(P);
  for (const auto &Param : P->Functions[0]->Params)
    EXPECT_EQ(Param.Ty.S, Scalar::UInt);
}

TEST(ParserTest, Typedef) {
  auto P = parseOk("typedef float FLOAT_T;\n"
                   "__kernel void A(__global FLOAT_T* a) { a[0] = 0.5f; }");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Functions[0]->Params[0].Ty.S, Scalar::Float);
}

TEST(ParserTest, ControlFlowStatements) {
  auto P = parseOk(
      "__kernel void A(__global int* a, int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i % 2 == 0) { a[i] = i; } else { a[i] = -i; }\n"
      "  }\n"
      "  int j = 0;\n"
      "  while (j < n) { j++; }\n"
      "  do { j--; } while (j > 0);\n"
      "}");
  ASSERT_TRUE(P);
  const auto &Body = P->Functions[0]->Body->Body;
  EXPECT_TRUE(isa<ForStmt>(Body[0].get()));
  EXPECT_TRUE(isa<WhileStmt>(Body[2].get()));
  EXPECT_TRUE(isa<DoStmt>(Body[3].get()));
}

TEST(ParserTest, MultiDeclaratorStatement) {
  auto P = parseOk("__kernel void A(int n) { int i = 0, j = 1, k; }");
  ASSERT_TRUE(P);
  // Grouped into a compound of three DeclStmts.
  const auto *CS = dyn_cast<CompoundStmt>(P->Functions[0]->Body->Body[0].get());
  ASSERT_TRUE(CS);
  EXPECT_EQ(CS->Body.size(), 3u);
}

TEST(ParserTest, LocalArrayDeclaration) {
  auto P = parseOk("__kernel void A(int n) { __local float tile[16 * 16]; }");
  ASSERT_TRUE(P);
  const auto *DS = dyn_cast<DeclStmt>(P->Functions[0]->Body->Body[0].get());
  ASSERT_TRUE(DS);
  EXPECT_EQ(DS->ArraySize, 256);
  EXPECT_EQ(DS->Ty.AS, AddrSpace::Local);
}

TEST(ParserTest, PrivateArrayDeclaration) {
  auto P = parseOk("__kernel void A(int n) { float acc[8]; }");
  ASSERT_TRUE(P);
  const auto *DS = dyn_cast<DeclStmt>(P->Functions[0]->Body->Body[0].get());
  ASSERT_TRUE(DS);
  EXPECT_EQ(DS->ArraySize, 8);
}

TEST(ParserTest, VectorLiteralAndSwizzle) {
  auto P = parseOk("__kernel void A(__global float4* a) {\n"
                   "  float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n"
                   "  float s = v.x + v.s3 + a[0].w;\n"
                   "  float2 h = v.lo;\n"
                   "}");
  ASSERT_TRUE(P);
}

TEST(ParserTest, ScalarCast) {
  auto P = parseOk("__kernel void A(float x) { int i = (int)x; }");
  ASSERT_TRUE(P);
  const auto *DS = dyn_cast<DeclStmt>(P->Functions[0]->Body->Body[0].get());
  ASSERT_TRUE(DS);
  EXPECT_TRUE(isa<CastExpr>(DS->Init.get()));
}

TEST(ParserTest, TernaryAndPrecedence) {
  auto P = parseOk("__kernel void A(int a, int b) {\n"
                   "  int c = a > b ? a : b;\n"
                   "  int d = a + b * 2 - (a << 1 | b & 3);\n"
                   "}");
  ASSERT_TRUE(P);
}

TEST(ParserTest, AssignmentAssociatesRight) {
  auto P = parseOk("__kernel void A(int a) { int b; int c; b = c = a; }");
  ASSERT_TRUE(P);
  const auto *ES = dyn_cast<ExprStmt>(P->Functions[0]->Body->Body[2].get());
  ASSERT_TRUE(ES);
  const auto *BE = dyn_cast<BinaryExpr>(ES->E.get());
  ASSERT_TRUE(BE);
  EXPECT_EQ(BE->Op, BinaryOp::Assign);
  EXPECT_TRUE(isa<BinaryExpr>(BE->Rhs.get()));
}

TEST(ParserTest, PointerDerefExpression) {
  auto P = parseOk("__kernel void A(__global float* a, int i) {\n"
                   "  *(a + i) = 1.0f;\n"
                   "}");
  ASSERT_TRUE(P);
}

TEST(ParserTest, GlobalConstant) {
  auto P = parseOk("__constant float Pi = 3.14159f;\n"
                   "__kernel void A(__global float* a) { a[0] = Pi; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Constants.size(), 1u);
  EXPECT_EQ(P->Constants[0].Name, "Pi");
}

TEST(ParserTest, AttributeSkipped) {
  auto P = parseOk(
      "__kernel __attribute__((reqd_work_group_size(64, 1, 1)))\n"
      "void A(__global int* a) { a[0] = 1; }");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->Functions[0]->IsKernel);
}

TEST(ParserTest, PrototypeIgnoredDefinitionKept) {
  auto P = parseOk("float helper(float x);\n"
                   "float helper(float x) { return x; }");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Functions.size(), 1u);
}

TEST(ParserTest, SizeofEvaluatesToConstant) {
  auto P = parseOk("__kernel void A(int n) { int s = sizeof(float4); }");
  ASSERT_TRUE(P);
  const auto *DS = dyn_cast<DeclStmt>(P->Functions[0]->Body->Body[0].get());
  const auto *IL = dyn_cast<IntLiteralExpr>(DS->Init.get());
  ASSERT_TRUE(IL);
  EXPECT_EQ(IL->Value, 16);
}

// --- Rejection cases (mirroring the rejection filter's diet) ---

TEST(ParserTest, RejectsStruct) {
  EXPECT_FALSE(parseProgram("struct S { int x; };").ok());
}

TEST(ParserTest, RejectsSwitch) {
  EXPECT_FALSE(
      parseProgram("__kernel void A(int n) { switch (n) { } }").ok());
}

TEST(ParserTest, RejectsGoto) {
  EXPECT_FALSE(
      parseProgram("__kernel void A(int n) { goto end; end: ; }").ok());
}

TEST(ParserTest, RejectsMultiLevelPointer) {
  EXPECT_FALSE(parseProgram("__kernel void A(__global float** a) {}").ok());
}

TEST(ParserTest, RejectsUnterminatedBlock) {
  EXPECT_FALSE(parseProgram("__kernel void A(int n) { if (n) {").ok());
}

TEST(ParserTest, RejectsTruncatedFile) {
  EXPECT_FALSE(parseProgram("__kernel void A(__global flo").ok());
}

TEST(ParserTest, RejectsArrayInitialiser) {
  EXPECT_FALSE(
      parseProgram("__kernel void A() { float w[2] = {1.0f, 2.0f}; }").ok());
}

TEST(ParserTest, DiagnosticCarriesLineNumber) {
  auto R = parseProgram("__kernel void A(int n) {\n  n +;\n}");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("line 2"), std::string::npos)
      << R.errorMessage();
}

TEST(ParserTest, PaperFigure6bKernel) {
  // Verbatim kernel from Figure 6b of the paper.
  auto P = parseOk(
      "__kernel void A(__global float* a,\n"
      "                __global float* b,\n"
      "                __global float* c,\n"
      "                const int d) {\n"
      "  int e = get_global_id(0);\n"
      "  if (e >= d) {\n"
      "    return;\n"
      "  }\n"
      "  c[e] = a[e] + b[e] + 2 * a[e] + b[e] + 4;\n"
      "}");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Functions[0]->Params.size(), 4u);
}

TEST(ParserTest, PaperFigure6cKernel) {
  // The float16 partial-reduction kernel from Figure 6c (types fixed so
  // that a is a float16 buffer, which is what the code implies).
  auto P = parseOk(
      "__kernel void A(__global float16* a, __global float* b,\n"
      "                __global float* c, const int d) {\n"
      "  unsigned int e = get_global_id(0);\n"
      "  float16 f = (float16)(0.0);\n"
      "  for (unsigned int g = 0; g < d; g++) {\n"
      "    float16 h = a[g];\n"
      "    f.s0 += h.s0;\n"
      "    f.s1 += h.s1;\n"
      "    f.sA += h.sA;\n"
      "    f.sF += h.sF;\n"
      "  }\n"
      "  b[e] = f.s0 + f.s1 + f.sA + f.sF;\n"
      "}");
  ASSERT_TRUE(P);
}

//===- tests/runtime/HostDriverBatchTest.cpp - batched driver tests ----------===//

#include "runtime/HostDriver.h"

#include "store/ResultCache.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace clgen;
using namespace clgen::runtime;

namespace {

std::vector<vm::CompiledKernel> sampleBatch() {
  const char *Sources[] = {
      "__kernel void a(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] * 2.0f + 1.0f; }\n"
      "}\n",
      "__kernel void b(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] + 3.0f; }\n"
      "}\n",
      "__kernel void c(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] = x[i] * x[i]; }\n"
      "}\n",
  };
  std::vector<vm::CompiledKernel> Kernels;
  for (const char *S : Sources)
    Kernels.push_back(vm::compileFirstKernel(S).take());
  return Kernels;
}

} // namespace

TEST(HostDriverBatchTest, MeasuresEveryKernel) {
  auto Kernels = sampleBatch();
  DriverOptions Opts;
  Opts.GlobalSize = 1024;
  auto Results = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 2);
  ASSERT_EQ(Results.size(), Kernels.size());
  for (const auto &R : Results) {
    ASSERT_TRUE(R.ok()) << R.errorMessage();
    EXPECT_GT(R.get().Counters.Instructions, 0u);
    EXPECT_GT(R.get().CpuTime, 0.0);
  }
}

TEST(HostDriverBatchTest, DeterministicAcrossWorkerCounts) {
  auto Kernels = sampleBatch();
  DriverOptions Opts;
  Opts.GlobalSize = 512;
  auto Serial = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 1);
  auto Parallel = runBenchmarkBatch(Kernels, amdPlatform(), Opts, 4);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    ASSERT_TRUE(Serial[I].ok());
    ASSERT_TRUE(Parallel[I].ok());
    EXPECT_EQ(Serial[I].get().Counters.Instructions,
              Parallel[I].get().Counters.Instructions);
    EXPECT_DOUBLE_EQ(Serial[I].get().CpuTime, Parallel[I].get().CpuTime);
    EXPECT_DOUBLE_EQ(Serial[I].get().GpuTime, Parallel[I].get().GpuTime);
  }
}

TEST(HostDriverBatchTest, CachedBatchMatchesUncachedAndHitsOnRerun) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     "clgen_batch_cache_test")
                        .string();
  std::filesystem::remove_all(Dir);

  auto Kernels = sampleBatch();
  DriverOptions Opts;
  Opts.GlobalSize = 1024;
  auto P = amdPlatform();
  auto Uncached = runBenchmarkBatch(Kernels, P, Opts, 2);

  store::ResultCache Cache(Dir);
  BatchCacheStats Cold, Warm;
  auto First = runBenchmarkBatch(Kernels, P, Opts, 2, Cache, &Cold);
  EXPECT_EQ(Cold.Hits, 0u);
  EXPECT_EQ(Cold.Misses, Kernels.size());
  // Warm rerun across worker counts and a fresh cache instance (disk
  // path): everything hits and nothing re-executes.
  store::ResultCache Reopened(Dir);
  auto Second = runBenchmarkBatch(Kernels, P, Opts, 4, Reopened, &Warm);
  EXPECT_EQ(Warm.Hits, Kernels.size());
  EXPECT_EQ(Warm.Misses, 0u);

  ASSERT_EQ(First.size(), Uncached.size());
  for (size_t I = 0; I < Uncached.size(); ++I) {
    ASSERT_TRUE(Uncached[I].ok());
    ASSERT_TRUE(First[I].ok());
    ASSERT_TRUE(Second[I].ok());
    EXPECT_EQ(First[I].get().Counters.Instructions,
              Uncached[I].get().Counters.Instructions);
    EXPECT_EQ(First[I].get().CpuTime, Uncached[I].get().CpuTime);
    EXPECT_EQ(Second[I].get().CpuTime, Uncached[I].get().CpuTime);
    EXPECT_EQ(Second[I].get().GpuTime, Uncached[I].get().GpuTime);
    EXPECT_EQ(Second[I].get().Counters.Instructions,
              Uncached[I].get().Counters.Instructions);
  }
  std::filesystem::remove_all(Dir);
}

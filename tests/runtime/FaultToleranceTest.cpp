//===- tests/runtime/FaultToleranceTest.cpp - trap taxonomy + watchdog --------===//
//
// The structured failure taxonomy (support/Trap.h) as carried through
// the measurement path: every rejection class maps to its TrapKind, the
// wall-clock watchdog catches hangs the instruction budget cannot, the
// opt-in div-by-zero trap changes kernel-visible semantics, and the
// retry wrapper retries exactly the transient classes. Injection-driven
// retry coverage arms real failpoints and is skipped in builds that
// compiled the sites out.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostDriver.h"

#include "support/FailPoint.h"
#include "support/Trap.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::runtime;

namespace {

vm::CompiledKernel compile(const std::string &Source) {
  auto K = vm::compileFirstKernel(Source);
  EXPECT_TRUE(K.ok()) << K.errorMessage();
  return K.take();
}

DriverOptions smallOpts() {
  DriverOptions Opts;
  Opts.GlobalSize = 512;
  Opts.LocalSize = 64;
  return Opts;
}

TEST(FaultToleranceTest, TrapKindNamesRoundTrip) {
  for (uint8_t Tag = 0; Tag <= 13; ++Tag) {
    TrapKind K = trapKindFromTag(Tag);
    EXPECT_EQ(static_cast<uint8_t>(K), Tag);
    EXPECT_NE(std::string(trapKindName(K)), "");
  }
  // Out-of-range tags decode to Unknown, not garbage: forward
  // compatibility for ledgers written by newer builds.
  EXPECT_EQ(trapKindFromTag(200), TrapKind::Unknown);
  // The policy partitions: no kind is both transient and deterministic.
  for (uint8_t Tag = 0; Tag <= 13; ++Tag) {
    TrapKind K = trapKindFromTag(Tag);
    EXPECT_FALSE(isTransientTrap(K) && isDeterministicTrap(K))
        << trapKindName(K);
  }
}

TEST(FaultToleranceTest, OutOfBoundsClassified) {
  auto M = runBenchmark(
      compile("__kernel void oob(__global float* a, const int n) {\n"
              "  a[get_global_id(0) + n] = 1.0f;\n"
              "}\n"),
      amdPlatform(), smallOpts());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::OutOfBounds);
  EXPECT_NE(M.errorMessage().find("out-of-bounds"), std::string::npos);
}

TEST(FaultToleranceTest, InstructionBudgetClassified) {
  DriverOptions Opts = smallOpts();
  Opts.MaxInstructions = 10000; // The spin kernel blows this instantly.
  auto M = runBenchmark(
      compile("__kernel void spin(__global float* a, const int n) {\n"
              "  while (1) { a[0] += 1.0f; }\n"
              "}\n"),
      amdPlatform(), Opts);
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::InstructionBudget);
}

TEST(FaultToleranceTest, WatchdogCatchesWallClockHang) {
  DriverOptions Opts = smallOpts();
  // Budget far beyond what the watchdog window can execute: without the
  // watchdog this would grind for seconds; with it the launch fails in
  // ~30ms wall time as a classified timeout.
  Opts.MaxInstructions = 4000ull * 1000 * 1000;
  Opts.WatchdogMs = 30;
  auto M = runBenchmark(
      compile("__kernel void spin(__global float* a, const int n) {\n"
              "  while (1) { a[0] += 1.0f; }\n"
              "}\n"),
      amdPlatform(), Opts);
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::WatchdogTimeout);
  EXPECT_NE(M.errorMessage().find("watchdog"), std::string::npos);
  // Watchdog timeouts are environment-dependent: never ledgerable.
  EXPECT_FALSE(isDeterministicTrap(M.trap()));
}

TEST(FaultToleranceTest, BarrierDivergenceClassified) {
  auto M = runBenchmark(
      compile("__kernel void bd(__global float* a, const int n) {\n"
              "  int l = get_local_id(0);\n"
              "  if (l < 2) { barrier(CLK_LOCAL_MEM_FENCE); }\n"
              "  a[get_global_id(0)] = (float)l;\n"
              "}\n"),
      amdPlatform(), smallOpts());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::BarrierDivergence);
}

TEST(FaultToleranceTest, CompileErrorClassified) {
  auto M = runBenchmark(std::string("__kernel void broken(__global float* "
                                    "a) { a[0] = MISSING; }\n"),
                        amdPlatform(), smallOpts());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::CompileError);
}

TEST(FaultToleranceTest, DivByZeroTrapIsOptIn) {
  const char *Source =
      "__kernel void dz(__global int* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = n / (a[i] - a[i]); }\n"
      "}\n";
  // Default: OpenCL's undefined-but-silent integer division; the
  // simulator evaluates it to a defined value and the launch succeeds.
  auto Silent = runBenchmark(compile(Source), amdPlatform(), smallOpts());
  EXPECT_TRUE(Silent.ok()) << Silent.errorMessage();
  EXPECT_EQ(Silent.trap(), TrapKind::None);

  // Opted in: the same kernel is a classified deterministic trap.
  DriverOptions Opts = smallOpts();
  Opts.TrapDivZero = true;
  auto Trapped = runBenchmark(compile(Source), amdPlatform(), Opts);
  ASSERT_FALSE(Trapped.ok());
  EXPECT_EQ(Trapped.trap(), TrapKind::DivByZero);
  EXPECT_NE(Trapped.errorMessage().find("division by zero"),
            std::string::npos);
  EXPECT_TRUE(isDeterministicTrap(Trapped.trap()));
}

TEST(FaultToleranceTest, SuccessfulRunHasNoTrap) {
  auto M = runBenchmark(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] * 2.0f; }\n"
              "}\n"),
      amdPlatform(), smallOpts());
  ASSERT_TRUE(M.ok()) << M.errorMessage();
  EXPECT_EQ(M.trap(), TrapKind::None);
}

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

TEST(FaultToleranceTest, DeterministicFailuresNeverRetry) {
  DriverOptions Opts = smallOpts();
  Opts.MaxRetries = 5;
  uint32_t Attempts = 0;
  auto M = runBenchmarkWithRetry(
      compile("__kernel void oob(__global float* a, const int n) {\n"
              "  a[get_global_id(0) + n] = 1.0f;\n"
              "}\n"),
      amdPlatform(), Opts, &Attempts);
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::OutOfBounds);
  EXPECT_EQ(Attempts, 1u); // Retrying a deterministic trap is waste.
}

TEST(FaultToleranceTest, RetryBackoffClampsAndSaturates) {
  // The schedule is exponential until the 30 s ceiling. A plain
  // `BackoffMs << Attempt` is UB from attempt 32 on a 32-bit base;
  // the helper must be total and monotone over the whole input range.
  EXPECT_EQ(retryBackoffMs(0, 0), 0u);
  EXPECT_EQ(retryBackoffMs(0, 1000), 0u); // Zero base stays zero.
  EXPECT_EQ(retryBackoffMs(1, 0), 1u);
  EXPECT_EQ(retryBackoffMs(1, 4), 16u);
  EXPECT_EQ(retryBackoffMs(100, 3), 800u);
  EXPECT_EQ(retryBackoffMs(1, 14), 16384u);
  // 1 << 15 = 32768 > 30000: first saturated step.
  EXPECT_EQ(retryBackoffMs(1, 15), MaxRetrySleepMs);
  // The former UB boundaries: shift counts 31, 32, 63, 64 and beyond
  // must all hit the ceiling, not wrap, zero out, or trap.
  for (uint32_t Attempt : {31u, 32u, 33u, 63u, 64u, 65u, 1000u,
                           0xFFFFFFFFu}) {
    EXPECT_EQ(retryBackoffMs(1, Attempt), MaxRetrySleepMs)
        << "attempt " << Attempt;
    EXPECT_EQ(retryBackoffMs(0xFFFFFFFFu, Attempt), MaxRetrySleepMs)
        << "attempt " << Attempt << " (max base)";
  }
  // Large base saturates immediately even with no shift.
  EXPECT_EQ(retryBackoffMs(0xFFFFFFFFu, 0), MaxRetrySleepMs);
  // Monotone: no attempt sleeps less than the one before it.
  uint64_t Prev = 0;
  for (uint32_t Attempt = 0; Attempt < 80; ++Attempt) {
    uint64_t Cur = retryBackoffMs(3, Attempt);
    EXPECT_GE(Cur, Prev) << "attempt " << Attempt;
    Prev = Cur;
  }
}

TEST(FaultToleranceTest, SuccessTakesOneAttempt) {
  uint32_t Attempts = 0;
  auto M = runBenchmarkWithRetry(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
              "}\n"),
      amdPlatform(), smallOpts(), &Attempts);
  ASSERT_TRUE(M.ok()) << M.errorMessage();
  EXPECT_EQ(Attempts, 1u);
}

TEST(FaultToleranceTest, TransientInjectedFaultClearsOnRetry) {
  if (!support::FailPoints::sitesCompiledIn())
    GTEST_SKIP() << "failpoint sites compiled out (-DCLGS_FAILPOINTS=OFF)";
  // One guaranteed fire at the payload site, then the cap stops
  // injection: attempt 1 fails transiently, attempt 2 measures.
  support::FailPlan Plan;
  Plan.Probability = 1.0;
  Plan.MaxFiresPerSite = 1;
  Plan.Sites = {"runtime.payload"};
  support::FailPoints::arm(Plan);
  uint32_t Attempts = 0;
  auto M = runBenchmarkWithRetry(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
              "}\n"),
      amdPlatform(), smallOpts(), &Attempts);
  support::FailPoints::disarm();
  ASSERT_TRUE(M.ok()) << M.errorMessage();
  EXPECT_EQ(Attempts, 2u);

  // With retries disabled the same schedule is a hard failure.
  support::FailPoints::arm(Plan);
  DriverOptions NoRetry = smallOpts();
  NoRetry.MaxRetries = 0;
  auto Hard = runBenchmarkWithRetry(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
              "}\n"),
      amdPlatform(), NoRetry, &Attempts);
  support::FailPoints::disarm();
  ASSERT_FALSE(Hard.ok());
  EXPECT_EQ(Hard.trap(), TrapKind::Injected);
  EXPECT_EQ(Attempts, 1u);
}

TEST(FaultToleranceTest, InjectedStallTripsWatchdog) {
  if (!support::FailPoints::sitesCompiledIn())
    GTEST_SKIP() << "failpoint sites compiled out (-DCLGS_FAILPOINTS=OFF)";
  // The vm.stall site sleeps past the watchdog budget; the launch must
  // come back classified as a timeout rather than wedging.
  support::FailPlan Plan;
  Plan.Probability = 1.0;
  Plan.StallMs = 50;
  Plan.Sites = {"vm.stall"};
  support::FailPoints::arm(Plan);
  DriverOptions Opts = smallOpts();
  Opts.WatchdogMs = 10;
  auto M = runBenchmark(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
              "}\n"),
      amdPlatform(), Opts);
  support::FailPoints::disarm();
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::WatchdogTimeout);
}

TEST(FaultToleranceTest, StallInsideFusedHandlerTripsWatchdog) {
  if (!support::FailPoints::sitesCompiledIn())
    GTEST_SKIP() << "failpoint sites compiled out (-DCLGS_FAILPOINTS=OFF)";
  // Regression for the watchdog cadence under superinstruction dispatch:
  // fused handlers retire two instructions per dispatch, so a cadence
  // that tested `Icount & Mask == 0` could stride straight over its
  // sampling point and never look at the clock again. The >=-deadline
  // counter cannot be skipped. The vm.fused.stall site lives INSIDE the
  // LoadConst+BinOp superinstruction handler, so this hang only exists
  // on the fused path — and must still come back as a classified
  // timeout.
  support::FailPlan Plan;
  Plan.Probability = 1.0;
  Plan.StallMs = 30;
  Plan.MaxFiresPerSite = 2; // Two stalls blow the budget; then run free.
  Plan.Sites = {"vm.fused.stall"};
  support::FailPoints::arm(Plan);
  DriverOptions Opts = smallOpts();
  Opts.WatchdogMs = 10;
  Opts.MaxInstructions = 4000ull * 1000 * 1000;
  Opts.Dispatch = vm::DispatchMode::ThreadedFused;
  // The loop body compiles to ... LoadConst(1.0) BinOp(Add) ... — a
  // FuseLdcBin pair executed every iteration, keeping the work-item
  // inside fused handlers while the watchdog deadline passes.
  auto M = runBenchmark(
      compile("__kernel void spin(__global float* a, const int n) {\n"
              "  while (1) { a[0] += 1.0f; }\n"
              "}\n"),
      amdPlatform(), Opts);
  uint64_t FusedStalls = 0;
  for (const auto &S : support::FailPoints::stats())
    if (S.Site == "vm.fused.stall")
      FusedStalls = S.Fires;
  support::FailPoints::disarm();
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.trap(), TrapKind::WatchdogTimeout);
  // The site firing proves the kernel really executed the fused pair
  // (i.e. the pass fused it); a zero here means the hang we are
  // regression-testing was never reproduced.
  EXPECT_GT(FusedStalls, 0u);
}

} // namespace

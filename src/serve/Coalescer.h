//===- serve/Coalescer.h - In-flight request coalescing ----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-flight request coalescing for the serve daemon: K identical
/// concurrent requests collapse onto exactly one computation, and every
/// caller receives the (copied) result. The first caller to present a
/// key becomes the LEADER and runs the compute closure; callers that
/// arrive while the leader is in flight become FOLLOWERS and block on
/// the leader's completion instead of recomputing.
///
/// This is the in-process half of the dedup story. Cross-process dedup
/// (several daemons or CLI runs sharing one store) is still carried by
/// store::ScopedLock underneath the compute closure — the coalescer
/// merely guarantees that one daemon never queues the same cold
/// computation twice, which the flock layer alone cannot do (flock is
/// per-open-file-description, so one process would happily re-enter).
///
/// Keys must capture the full SEMANTIC configuration of the request
/// (the same discipline as store cache keys): two requests with equal
/// keys MUST be satisfiable by one result. Scheduling knobs stay out.
///
/// Entries are removed as soon as the leader finishes, so coalescing is
/// strictly in-flight: a request arriving after completion starts a
/// fresh flight (and typically hits the warm store instead).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SERVE_COALESCER_H
#define CLGEN_SERVE_COALESCER_H

#include "support/Result.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace clgen {
namespace serve {

/// Coalesces concurrent computations keyed by a 64-bit semantic digest.
/// Thread-safe; the compute closure runs outside all coalescer locks.
template <typename T> class Coalescer {
public:
  /// Runs \p Compute under single-flight semantics for \p Key. Returns
  /// the leader's result (followers get a copy). \p WasLeader, when
  /// non-null, reports whether THIS call executed the computation —
  /// the signal the coalescing tests assert on.
  Result<T> run(uint64_t Key, const std::function<Result<T>()> &Compute,
                bool *WasLeader = nullptr) {
    std::shared_ptr<Entry> E;
    bool Leader = false;
    {
      std::lock_guard<std::mutex> Guard(MapMutex);
      auto It = InFlight.find(Key);
      if (It == InFlight.end()) {
        E = std::make_shared<Entry>();
        InFlight.emplace(Key, E);
        Leader = true;
        ++NumLeaders;
      } else {
        E = It->second;
        ++NumFollowers;
      }
    }
    if (WasLeader)
      *WasLeader = Leader;

    if (!Leader) {
      std::unique_lock<std::mutex> Lock(E->M);
      E->Cv.wait(Lock, [&] { return E->Done; });
      return E->Value;
    }

    Result<T> R = Compute();
    {
      std::lock_guard<std::mutex> Guard(E->M);
      E->Value = R;
      E->Done = true;
    }
    E->Cv.notify_all();
    {
      std::lock_guard<std::mutex> Guard(MapMutex);
      InFlight.erase(Key);
    }
    return R;
  }

  /// Number of computations actually executed (cold flights led).
  uint64_t leaders() const {
    std::lock_guard<std::mutex> Guard(MapMutex);
    return NumLeaders;
  }

  /// Number of requests that piggybacked on an in-flight leader.
  uint64_t followers() const {
    std::lock_guard<std::mutex> Guard(MapMutex);
    return NumFollowers;
  }

  /// Number of flights currently in progress.
  size_t inFlight() const {
    std::lock_guard<std::mutex> Guard(MapMutex);
    return InFlight.size();
  }

private:
  struct Entry {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    Result<T> Value = Result<T>::error("coalesced flight still pending");
  };

  mutable std::mutex MapMutex;
  std::map<uint64_t, std::shared_ptr<Entry>> InFlight;
  uint64_t NumLeaders = 0;
  uint64_t NumFollowers = 0;
};

} // namespace serve
} // namespace clgen

#endif // CLGEN_SERVE_COALESCER_H

#!/usr/bin/env bash
#===- scripts/check_docs.sh - keep the docs honest -----------------------===//
#
# Verifies that every repo path, C++ symbol, test name and CLI flag
# referenced in README.md and docs/*.md actually exists in the tree, so
# the documentation cannot silently rot as code moves. Registered as the
# ctest `check_docs`; run manually from the repo root:
#
#   bash scripts/check_docs.sh
#
# What gets checked (tokens inside single-backtick inline code spans;
# fenced code blocks are skipped — they hold command transcripts, not
# references):
#   - path-like tokens (contain '/' under a known top-level dir, or are
#    top-level files with a known extension) must exist on disk
#   - qualified C++ symbols (ns::Name, Class::member) must appear in
#     src/ sources
#   - `--flag` tokens must appear in examples/benchmark_runner.cpp,
#     examples/store_tool.cpp or examples/serve_tool.cpp
#   - `clgen-store <sub> [--flag ...]` / `clgen-serve <sub> [--flag ...]`
#     invocations: every subcommand and option word must be handled by
#     the matching tool source, so documented CLI usage cannot rot
#   - SuiteName.TestName tokens must appear under tests/
#
#===----------------------------------------------------------------------===//

set -u
cd "$(dirname "$0")/.."

DOCS=(README.md docs/*.md)
FAILURES=0

fail() {
  echo "check_docs: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# Emit every inline-code token of one file, skipping ``` fences.
inline_tokens() {
  awk '
    /^[[:space:]]*```/ { fenced = !fenced; next }
    !fenced {
      line = $0
      while (match(line, /`[^`]+`/)) {
        print substr(line, RSTART + 1, RLENGTH - 2)
        line = substr(line, RSTART + RLENGTH)
      }
    }
  ' "$1"
}

for DOC in "${DOCS[@]}"; do
  [ -f "$DOC" ] || { fail "documentation file missing: $DOC"; continue; }

  while IFS= read -r TOKEN; do
    # --- clgen-store invocations (checked before the space filter:
    # "clgen-store gc --dry-run" is a reference, not prose) -------------
    case "$TOKEN" in
    clgen-store | "clgen-store "*)
      SUB_SEEN=0
      for WORD in $TOKEN; do
        case "$WORD" in
        clgen-store) ;;
        --*)
          if ! grep -qF -- "\"$WORD\"" examples/store_tool.cpp; then
            fail "$DOC references clgen-store option \`$WORD\` not handled by examples/store_tool.cpp"
          fi
          ;;
        [a-z]*)
          # The first lowercase word is the subcommand; later ones are
          # operands (directory names, values) and are not checked.
          if [ "$SUB_SEEN" -eq 0 ]; then
            SUB_SEEN=1
            if ! grep -qF -- "\"$WORD\"" examples/store_tool.cpp; then
              fail "$DOC references clgen-store subcommand \`$WORD\` not handled by examples/store_tool.cpp"
            fi
          fi
          ;;
        *) ;; # Operand placeholder (DIR, N, ...): skip.
        esac
      done
      continue
      ;;
    clgen-serve | "clgen-serve "*)
      SUB_SEEN=0
      for WORD in $TOKEN; do
        case "$WORD" in
        clgen-serve) ;;
        --*)
          if ! grep -qF -- "\"$WORD\"" examples/serve_tool.cpp; then
            fail "$DOC references clgen-serve option \`$WORD\` not handled by examples/serve_tool.cpp"
          fi
          ;;
        [a-z]*)
          if [ "$SUB_SEEN" -eq 0 ]; then
            SUB_SEEN=1
            if ! grep -qF -- "\"$WORD\"" examples/serve_tool.cpp; then
              fail "$DOC references clgen-serve subcommand \`$WORD\` not handled by examples/serve_tool.cpp"
            fi
          fi
          ;;
        *) ;; # Operand placeholder (PATH, DIR, N, ...): skip.
        esac
      done
      continue
      ;;
    esac

    case "$TOKEN" in
    # Tokens with placeholders, options, spaces or globs are prose, not
    # checkable references ("docs/*.md", "--cache-dir DIR", "-j", ...).
    *" "* | *"*"* | *"<"* | *"..."* | *"…"*) continue ;;
    esac

    # --- CLI flags of the runner / lifecycle tools ----------------------
    case "$TOKEN" in
    --*)
      if ! grep -qF -- "\"$TOKEN\"" examples/benchmark_runner.cpp &&
         ! grep -qF -- "\"$TOKEN\"" examples/store_tool.cpp &&
         ! grep -qF -- "\"$TOKEN\"" examples/serve_tool.cpp; then
        fail "$DOC references flag \`$TOKEN\` not handled by examples/benchmark_runner.cpp, examples/store_tool.cpp or examples/serve_tool.cpp"
      fi
      continue
      ;;
    -*) continue ;; # Short options / compiler switches: prose.
    esac

    # --- Repo paths -----------------------------------------------------
    case "$TOKEN" in
    src/* | tests/* | docs/* | examples/* | bench/* | scripts/*)
      [ -e "$TOKEN" ] || fail "$DOC references missing path \`$TOKEN\`"
      continue
      ;;
    *.md | *.json | *.txt | CMakeLists.txt)
      [ -e "$TOKEN" ] || fail "$DOC references missing file \`$TOKEN\`"
      continue
      ;;
    esac

    # --- Qualified C++ symbols (ns::Name, Class::member, ...) -----------
    if printf '%s' "$TOKEN" | grep -Eq '^[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_~][A-Za-z0-9_]*)+(\(\))?$'; then
      # Every component must appear in src/ next to its neighbour; the
      # cheap-but-sharp approximation is grepping for the trailing
      # "Parent::Leaf" pair (or "Leaf" declarations for ns::Leaf).
      PAIR=$(printf '%s' "$TOKEN" | sed 's/()$//' | awk -F'::' '{ print $(NF-1) "::" $NF }')
      LEAF=$(printf '%s' "$TOKEN" | sed 's/()$//' | awk -F'::' '{ print $NF }')
      if ! grep -rqF "$PAIR" src/ && ! grep -rqE "(struct|class|enum class|void|bool|double|float|[A-Za-z0-9_>&*] )${LEAF}[[:space:](;{]" src/; then
        fail "$DOC references symbol \`$TOKEN\` not found in src/"
      fi
      continue
    fi

    # --- Test names (Suite.Test) ----------------------------------------
    if printf '%s' "$TOKEN" | grep -Eq '^[A-Z][A-Za-z0-9]*Test\.[A-Za-z0-9]+$'; then
      SUITE=${TOKEN%%.*}
      NAME=${TOKEN#*.}
      if ! grep -rqE "TEST(_F)?\($SUITE, *$NAME\)" tests/; then
        fail "$DOC references test \`$TOKEN\` not found under tests/"
      fi
      continue
    fi
  done < <(inline_tokens "$DOC")
done

if [ "$FAILURES" -ne 0 ]; then
  echo "check_docs: $FAILURES stale documentation reference(s)" >&2
  exit 1
fi
echo "check_docs: all documentation references resolve"

//===- clgen/Pipeline.h - End-to-end CLgen pipeline --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end CLgen pipeline of Figure 4: content files -> rejection
/// filter -> code rewriter -> language corpus -> language model ->
/// synthesizer -> synthesized benchmarks. This is the public facade most
/// examples and experiments use.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CLGEN_PIPELINE_H
#define CLGEN_CLGEN_PIPELINE_H

#include "clgen/Synthesizer.h"
#include "corpus/Corpus.h"
#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "runtime/HostDriver.h"
#include "support/Result.h"

#include <memory>
#include <optional>
#include <string>

namespace clgen {
namespace core {

enum class ModelBackend {
  /// Interpolated character n-gram: trains in seconds; used by the
  /// large-scale experiments (see DESIGN.md substitution notes).
  NGram,
  /// The paper's LSTM architecture, at laptop-scale defaults.
  Lstm,
};

struct PipelineOptions {
  corpus::CorpusOptions Corpus;
  ModelBackend Backend = ModelBackend::NGram;
  model::NGramOptions NGram;
  model::LstmOptions Lstm;
  /// Scheduling knobs for model training (LSTM backend: the data-parallel
  /// gradient engine's worker count). Excluded from fingerprint() — like
  /// CorpusOptions::Workers, nothing here can change the trained
  /// artifact; weights are bit-identical for any worker count.
  model::TrainOptions Train;
};

/// What trainOrLoad did and where its artifacts live.
struct TrainOrLoadInfo {
  /// True when the model / corpus came from the artifact store instead
  /// of being rebuilt.
  bool LoadedModel = false;
  bool LoadedCorpus = false;
  /// Content fingerprint of (files, corpus options, backend, model
  /// options) — the cache address of this training configuration.
  uint64_t Fingerprint = 0;
  std::string ModelPath;
  std::string CorpusPath;
};

/// Configuration of the streaming synthesis→measurement pipeline.
struct StreamingOptions {
  SynthesisOptions Synthesis;
  runtime::DriverOptions Driver;
  /// Measurement consumer threads pulling from the channel (1 = one
  /// consumer, 0 = hardware concurrency). Purely a scheduling knob:
  /// results are bit-identical for every value.
  unsigned MeasureWorkers = 1;
  /// Bounded capacity of the kernel channel (0 = auto: twice the
  /// measurement workers, at least 8). Bounds how far synthesis can run
  /// ahead of measurement.
  size_t QueueCapacity = 0;
  /// Optional result cache, probed AT ENQUEUE TIME by the producer:
  /// hits are resolved in place and never occupy a measurement slot;
  /// misses are measured by the consumers and written back.
  store::ResultCache *Cache = nullptr;
  /// Optional persistent failure ledger (store/FailureLedger.h), probed
  /// at enqueue time after a cache miss: a known-bad kernel resolves as
  /// a negative hit (its recorded diagnostic replayed byte-identically)
  /// without occupying a measurement slot, and fresh deterministic
  /// failures are recorded after each measurement round. Counted in
  /// CacheStats.LedgerHits / LedgerRecords.
  store::FailureLedger *Ledger = nullptr;
  /// Excise kernels whose measurement failed and refill the batch: the
  /// synthesis engine resumes its (deterministic) sampling cursor to
  /// draw replacements until TargetKernels measurements SUCCEED or the
  /// attempt budget runs dry. Excised kernels are reported in
  /// StreamingResult::Excised; surviving (kernel, measurement) pairs
  /// are byte-identical to what a fault-free run produces for the same
  /// accept indices. Off by default: the classic contract delivers
  /// TargetKernels accepted kernels, failures included in-place.
  bool RefillFailures = false;
};

/// One kernel dropped by the refill pass (StreamingOptions::
/// RefillFailures), with everything needed to audit the excision.
struct ExcisedKernel {
  /// The kernel's accept index in the synthesis stream (its measurement
  /// seed derivation), disjoint from surviving kernels' indices.
  size_t AcceptIndex = 0;
  /// Normalised source of the excised kernel.
  std::string Source;
  /// Measurement/ledger key (0 when neither cache nor ledger was
  /// configured).
  uint64_t Key = 0;
  /// Classified cause and the full diagnostic.
  TrapKind Kind = TrapKind::Unknown;
  std::string Error;
  /// True when the failure was served from the ledger (the kernel was
  /// never measured this run).
  bool FromLedger = false;
};

/// Everything the streaming pipeline produced. Measurements are
/// index-aligned with Kernels (accept order), exactly as if the phased
/// path had run synthesizeKernels and then runBenchmarkBatch.
struct StreamingResult {
  std::vector<SynthesizedKernel> Kernels;
  std::vector<Result<runtime::Measurement>> Measurements;
  SynthesisStats Stats;
  runtime::BatchCacheStats CacheStats;
  /// Kernels dropped by the refill pass (empty unless RefillFailures).
  /// Exactly-once accounting: Stats.Accepted == Kernels.size() +
  /// Excised.size() — every accepted kernel either survives with a
  /// measurement or appears here with its classified failure.
  std::vector<ExcisedKernel> Excised;
  /// Overlap diagnostics: wall time of the synthesis producer (which
  /// includes any time it spent blocked on the full channel), and the
  /// drain tail — how long measurement kept running after the last
  /// kernel was accepted. A small tail means measurement genuinely
  /// overlapped synthesis instead of queueing behind it.
  double SynthesisWallMs = 0.0;
  double DrainWallMs = 0.0;
  double TotalWallMs = 0.0;
};

/// What synthesizeAndMeasureOrLoad did: whether the kernel set came
/// from the store (the sampling-free warm path) and where it lives.
struct StreamingWarmInfo {
  /// True when the kernel set was loaded from the persisted synthesis
  /// artifact instead of sampled: the channel producer was an archive
  /// reader and the request performed ZERO sampling (no synthesis
  /// engine was even constructed — clgen.synthesis.* counters do not
  /// move).
  bool Warm = false;
  /// True when this (cold) run persisted the kernel-set artifact for
  /// the next caller.
  bool Persisted = false;
  /// Kernels deserialized on the warm path (0 when cold).
  size_t LoadedKernels = 0;
  /// The synthesis cache key digest (0 when the model is unserializable
  /// and no keying was possible).
  uint64_t KeyDigest = 0;
  /// Path of the kernel-set artifact (the same file synthesizeOrLoad
  /// reads and writes — the two entry points interoperate).
  std::string ArtifactPath;
};

/// The tentpole entry point: runs synthesis and driver-side measurement
/// as a bounded producer/consumer pipeline instead of two phase-barried
/// batches. Accepted kernels flow through a support::Channel from the
/// (accept-order) synthesis stage straight into measurement workers.
///
/// Determinism contract: results are keyed by accept index — kernel i
/// is measured under runtime::batchDriverOptions(Driver, Rng(Driver.
/// Seed), i), the same derivation as runBenchmarkBatch — and the result
/// vector is index-ordered on return, so the output is bit-identical to
/// the phased path (synthesizeKernels + runBenchmarkBatch) for any
/// MeasureWorkers, QueueCapacity, synthesis worker count or wave size,
/// with or without a (pre-warmed) cache.
StreamingResult synthesizeAndMeasure(model::LanguageModel &Model,
                                     const runtime::Platform &P,
                                     const StreamingOptions &Opts);

/// A trained CLgen instance: the corpus it learned from plus the model.
class ClgenPipeline {
public:
  /// Builds the corpus from \p Files and trains the model.
  static ClgenPipeline train(const std::vector<corpus::ContentFile> &Files,
                             const PipelineOptions &Opts = PipelineOptions());

  /// Warm-start variant: fingerprints the content files + options and,
  /// when \p CacheDir holds a model (and corpus snapshot) stored under
  /// that fingerprint, loads it instead of retraining — synthesis from
  /// a loaded model is bit-identical to synthesis from a fresh one.
  /// Misses (or corrupt artifacts, which are ignored and overwritten)
  /// train as usual and persist both artifacts atomically for the next
  /// run. Fails only when \p CacheDir cannot be created/written.
  ///
  /// Stampede control: the hit path is lock-free, but a cold miss
  /// takes an advisory per-fingerprint file lock (store/Lock.h) and
  /// re-probes under it, so K concurrent cold runs of one
  /// configuration — threads or processes — train exactly once and the
  /// losers warm-start off the winner's artifacts. Lock timeouts
  /// degrade to duplicated (byte-identical) training, never an error.
  static Result<ClgenPipeline>
  trainOrLoad(const std::string &CacheDir,
              const std::vector<corpus::ContentFile> &Files,
              const PipelineOptions &Opts = PipelineOptions(),
              TrainOrLoadInfo *Info = nullptr);

  /// The fingerprint trainOrLoad addresses its artifacts by (exposed
  /// for tests and cache-inspection tooling).
  static uint64_t
  fingerprint(const std::vector<corpus::ContentFile> &Files,
              const PipelineOptions &Opts);

  /// Synthesizes benchmarks with the trained model. Set
  /// SynthesisOptions::Workers to fan candidate sampling out across a
  /// thread pool; results are bit-identical for every worker count.
  SynthesisResult synthesize(const SynthesisOptions &Opts);

  /// Memoizing variant: the synthesized kernel set is itself a durable
  /// artifact ("living benchmark suite"), stored in \p CacheDir under a
  /// digest of (this pipeline's model, the output-relevant synthesis
  /// options). A hit deserializes the kernels instead of re-sampling —
  /// valid because synthesize() is a pure function of those inputs;
  /// Workers/WaveSize are excluded from the key, matching the engine's
  /// bit-identical-across-workers contract. For pipelines built by
  /// trainOrLoad the model is identified by the training fingerprint;
  /// otherwise the key digests the serialized model content itself.
  /// Corrupt or missing entries re-synthesize and overwrite; cache I/O
  /// failures degrade to plain synthesis (never an error). Like
  /// trainOrLoad, a cold miss serializes concurrent racers on an
  /// advisory per-key lock (hit path lock-free; sampling happens once,
  /// losers load the winner's kernel set — \p Loaded reports true for
  /// them).
  SynthesisResult synthesizeOrLoad(const std::string &CacheDir,
                                   const SynthesisOptions &Opts,
                                   bool *Loaded = nullptr);

  /// Streaming synthesis→measurement over this pipeline's model; see
  /// the free core::synthesizeAndMeasure for the full contract.
  StreamingResult synthesizeAndMeasure(const runtime::Platform &P,
                                       const StreamingOptions &Opts) {
    return core::synthesizeAndMeasure(*Model, P, Opts);
  }

  /// Warm-start streaming: the fix for the gap where streaming requests
  /// always re-sampled even when the persisted kernel-set artifact was
  /// warm. Probes \p CacheDir under the SAME key and artifact file as
  /// synthesizeOrLoad; on a hit the channel producer becomes an archive
  /// reader — the loaded kernels flow straight into the measurement
  /// workers (enqueue-time cache/ledger probes and the accept-index
  /// seed derivation unchanged) and the request performs zero sampling.
  /// A cold miss runs the full streaming pipeline and persists the
  /// kernel set for the next caller, serialized on the same advisory
  /// "synthesis" lock as synthesizeOrLoad (exactly-once cold sampling
  /// across threads, processes, and both entry points).
  ///
  /// Warm results are byte-identical to cold ones: kernels come from
  /// the artifact, measurements re-derive per-kernel seeds by accept
  /// index, and Stats replays the archived synthesis statistics. The
  /// work provenance (did THIS call sample?) is reported via \p Info,
  /// not the result.
  ///
  /// RefillFailures is incompatible with the kernel-set artifact (the
  /// delivered set then depends on measurement outcomes, not synthesis
  /// options alone), so refill requests always sample and never load or
  /// persist; unserializable models likewise fall back to plain
  /// streaming.
  StreamingResult
  synthesizeAndMeasureOrLoad(const std::string &CacheDir,
                             const runtime::Platform &P,
                             const StreamingOptions &Opts,
                             StreamingWarmInfo *Info = nullptr);

  const corpus::Corpus &corpus() const { return TrainingCorpus; }
  model::LanguageModel &languageModel() { return *Model; }

  /// Artifact-store fingerprint this pipeline was trained/loaded under
  /// (0 when built by plain train()).
  uint64_t artifactFingerprint() const { return ArtifactFingerprint; }

private:
  /// Digest of (model identity, output-relevant synthesis options) —
  /// the shared cache key of synthesizeOrLoad and
  /// synthesizeAndMeasureOrLoad. nullopt when the model cannot be
  /// serialized (nothing to key on).
  std::optional<uint64_t>
  synthesisKeyDigest(const SynthesisOptions &Opts) const;

  corpus::Corpus TrainingCorpus;
  std::unique_ptr<model::LanguageModel> Model;
  uint64_t ArtifactFingerprint = 0;
};

} // namespace core
} // namespace clgen

#endif // CLGEN_CLGEN_PIPELINE_H

//===- tests/vm/DispatchParityTest.cpp - dispatch trap-parity tests -----------===//
//
// The VM's trap-parity contract: Switch (the reference loop over raw
// bytecode), Threaded (dispatch-resolved execution form) and
// ThreadedFused (plus the profile-guided superinstruction pass) must be
// observationally identical — byte-identical survivor buffers, ExecCounters
// equal field for field, and on failure the same TrapKind with the same
// detail string. Dispatch is excluded from measurement cache keys on the
// strength of this contract, so these tests are what make that exclusion
// sound. Coverage: a catalog of well-formed kernels over randomized
// payloads (spanning every fusion family), one kernel per trap class,
// the launch-time Aux-range validation (out-of-range enum payloads must
// be TrapKind::BadLaunch in every mode, never undefined behavior in a
// fused handler), and unit tests of the prepareExecProgram fusion pass
// itself (1:1 slot mapping, jump-target fusion barrier).
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::vm;

namespace {

const DispatchMode AllModes[] = {DispatchMode::Switch, DispatchMode::Threaded,
                                 DispatchMode::ThreadedFused};

CompiledKernel compile(const std::string &Src) {
  auto R = compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.take() : CompiledKernel();
}

LaunchConfig config1D(size_t Global, size_t Local) {
  LaunchConfig C;
  C.GlobalSize[0] = Global;
  C.LocalSize[0] = Local;
  return C;
}

/// Deterministic pseudo-random payload (xorshift; no global RNG state so
/// every mode replays the identical bytes).
BufferData randomBuffer(size_t Elements, uint8_t ElemWidth, uint64_t Seed) {
  BufferData B = BufferData::zeros(Elements, ElemWidth);
  uint64_t S = Seed * 2654435769u + 1;
  for (double &D : B.Data) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    // Small integral doubles: valid as float data, as int data and as
    // in-range indices alike.
    D = static_cast<double>(S % 64);
  }
  return B;
}

/// Everything observable about one launch, copied out so runs in
/// different modes can be compared after the fact.
struct Observed {
  bool Ok = false;
  ExecCounters C;
  TrapKind Trap = TrapKind::None;
  std::string Error;
  std::vector<BufferData> Bufs;
};

Observed runMode(const CompiledKernel &K, const std::vector<KernelArg> &Args,
                 const std::vector<BufferData> &Input, LaunchConfig Config,
                 DispatchMode Mode) {
  Observed O;
  O.Bufs = Input; // Fresh copy: every mode starts from identical bytes.
  Config.Dispatch = Mode;
  auto R = launchKernel(K, Args, O.Bufs, Config);
  O.Ok = R.ok();
  O.Trap = R.trap();
  if (R.ok())
    O.C = R.get();
  else
    O.Error = R.errorMessage();
  return O;
}

/// Field-for-field ExecCounters equality; a plain memcmp would hide
/// which counter drifted.
void expectCountersEqual(const ExecCounters &A, const ExecCounters &B) {
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.ComputeOps, B.ComputeOps);
  EXPECT_EQ(A.MathCalls, B.MathCalls);
  EXPECT_EQ(A.GlobalLoads, B.GlobalLoads);
  EXPECT_EQ(A.GlobalStores, B.GlobalStores);
  EXPECT_EQ(A.CoalescedGlobal, B.CoalescedGlobal);
  EXPECT_EQ(A.LocalAccesses, B.LocalAccesses);
  EXPECT_EQ(A.PrivateAccesses, B.PrivateAccesses);
  EXPECT_EQ(A.Branches, B.Branches);
  EXPECT_EQ(A.AtomicOps, B.AtomicOps);
  EXPECT_EQ(A.Barriers, B.Barriers);
  EXPECT_EQ(A.ItemsTotal, B.ItemsTotal);
  EXPECT_EQ(A.ItemsExecuted, B.ItemsExecuted);
  EXPECT_EQ(A.Divergence, B.Divergence);
}

/// Launches \p K in every dispatch mode and asserts the full parity
/// contract against the Switch reference run.
void expectParity(const CompiledKernel &K, const std::vector<KernelArg> &Args,
                  const std::vector<BufferData> &Input,
                  const LaunchConfig &Config) {
  Observed Ref = runMode(K, Args, Input, Config, DispatchMode::Switch);
  for (DispatchMode Mode : {DispatchMode::Threaded,
                            DispatchMode::ThreadedFused, DispatchMode::Auto}) {
    SCOPED_TRACE(std::string("dispatch mode ") + dispatchModeName(Mode));
    Observed Got = runMode(K, Args, Input, Config, Mode);
    EXPECT_EQ(Ref.Ok, Got.Ok) << (Ref.Ok ? Got.Error : Ref.Error);
    EXPECT_EQ(Ref.Trap, Got.Trap)
        << trapKindName(Ref.Trap) << " vs " << trapKindName(Got.Trap);
    EXPECT_EQ(Ref.Error, Got.Error);
    if (Ref.Ok && Got.Ok)
      expectCountersEqual(Ref.C, Got.C);
    ASSERT_EQ(Ref.Bufs.size(), Got.Bufs.size());
    for (size_t I = 0; I < Ref.Bufs.size(); ++I)
      EXPECT_EQ(Ref.Bufs[I].Data, Got.Bufs[I].Data) << "buffer " << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Successful launches: byte-identical results + counters on a kernel
// catalog spanning every superinstruction family.
//===----------------------------------------------------------------------===//

TEST(DispatchParityTest, FusionFamilyCatalog) {
  // Each entry leans on a different part of the fusion pass: ldc+bin /
  // bin+st (scale), ld+bin chains (stencil), bin+jz compare-branches
  // (guards, loops), mov+bin and bin+bin (expression trees), cast+mov
  // and callb+mov (builtins), mov+jmp (loop latches).
  const char *Catalog[] = {
      // ldc+bin, bin+st, mov chains.
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = a[i] * 2.0f + 1.0f;\n"
      "}",
      // Guarded saxpy: bin+jz from the bounds compare.
      "__kernel void A(__global float* x, __global float* y, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { y[i] = y[i] + 3.0f * x[i]; }\n"
      "}",
      // Loop with latch (mov+jmp), reduction (bin+bin), integer ops.
      "__kernel void A(__global float* a, __global float* o, const int n) {\n"
      "  float s = 0.0f;\n"
      "  int parity = 0;\n"
      "  for (int i = 0; i < n; i++) { s += a[i]; parity = (parity + i) % 7; }\n"
      "  o[get_global_id(0)] = s + parity;\n"
      "}",
      // Builtins: cast+mov, callb+mov, math-call accounting.
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  float v = a[i];\n"
      "  a[i] = sqrt(fabs(v)) + (float)max((int)v, 3);\n"
      "}",
      // Divergent control flow: per-site branch stats must agree.
      "__kernel void A(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i % 3 == 0) { a[i] = a[i] * 2.0f; }\n"
      "  else if (i % 3 == 1) { a[i] = a[i] - 5.0f; }\n"
      "  else { a[i] = (float)(n - i); }\n"
      "}",
  };
  for (size_t KI = 0; KI < sizeof(Catalog) / sizeof(Catalog[0]); ++KI) {
    SCOPED_TRACE("catalog kernel " + std::to_string(KI));
    CompiledKernel K = compile(Catalog[KI]);
    size_t NumBufs = K.bufferParamCount();
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      SCOPED_TRACE("seed " + std::to_string(Seed));
      std::vector<BufferData> Bufs;
      std::vector<KernelArg> Args;
      for (size_t B = 0; B < NumBufs; ++B) {
        Bufs.push_back(randomBuffer(64, 1, Seed * 17 + B));
        Args.push_back(KernelArg::buffer(static_cast<int>(B)));
      }
      if (K.Params.size() > NumBufs)
        Args.push_back(KernelArg::scalar(16));
      expectParity(K, Args, Bufs, config1D(32, 8));
    }
  }
}

TEST(DispatchParityTest, VectorLocalAndAtomicKernels) {
  // Vector lanes, __local + barrier phases and atomics all bypass the
  // scalar fast paths of the threaded loop; parity must hold there too.
  CompiledKernel Vec = compile(
      "__kernel void A(__global float4* a) {\n"
      "  int i = get_global_id(0);\n"
      "  float4 v = a[i];\n"
      "  a[i] = v.wzyx * 2.0f;\n"
      "}");
  expectParity(Vec, {KernelArg::buffer(0)}, {randomBuffer(16, 4, 5)},
               config1D(16, 4));

  CompiledKernel Loc = compile(
      "__kernel void A(__global float* a, __local float* tmp) {\n"
      "  int l = get_local_id(0);\n"
      "  int i = get_global_id(0);\n"
      "  tmp[l] = a[i];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[i] = tmp[get_local_size(0) - 1 - l];\n"
      "}");
  expectParity(Loc, {KernelArg::buffer(0), KernelArg::localSize(8)},
               {randomBuffer(32, 1, 6)}, config1D(32, 8));

  CompiledKernel Hist = compile(
      "__kernel void A(__global int* hist, __global int* data) {\n"
      "  atomic_add(&hist[data[get_global_id(0)] % 8], 1);\n"
      "}");
  expectParity(Hist, {KernelArg::buffer(0), KernelArg::buffer(1)},
               {BufferData::zeros(8, 1), randomBuffer(32, 1, 7)},
               config1D(32, 8));
}

//===----------------------------------------------------------------------===//
// Trap classes: same TrapKind, same detail string, in every mode.
//===----------------------------------------------------------------------===//

TEST(DispatchParityTest, OutOfBoundsTrapParity) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  a[get_global_id(0) + 100] = 1.0f;\n"
      "}");
  expectParity(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 1)},
               config1D(4, 4));
  Observed O = runMode(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 1)},
                       config1D(4, 4), DispatchMode::ThreadedFused);
  EXPECT_EQ(O.Trap, TrapKind::OutOfBounds);
}

TEST(DispatchParityTest, DivByZeroTrapParity) {
  // The divisor arrives via buffer data, so the fused per-op DivI
  // handler (not the compiler) must raise the trap.
  CompiledKernel K = compile(
      "__kernel void A(__global int* a, __global int* d) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = a[i] / d[i];\n"
      "}");
  LaunchConfig C = config1D(4, 4);
  C.TrapDivZero = true;
  expectParity(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
               {randomBuffer(4, 1, 2), BufferData::zeros(4, 1)}, C);
  Observed O = runMode(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                       {randomBuffer(4, 1, 2), BufferData::zeros(4, 1)}, C,
                       DispatchMode::ThreadedFused);
  EXPECT_EQ(O.Trap, TrapKind::DivByZero);

  // Without strict trapping the OpenCL-style silent zero must be the
  // result everywhere instead.
  C.TrapDivZero = false;
  expectParity(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
               {randomBuffer(4, 1, 2), BufferData::zeros(4, 1)}, C);
}

TEST(DispatchParityTest, InstructionBudgetTrapParity) {
  // The budget trap must fire after the same retired-instruction count
  // in every mode — the fused loop checks per original instruction, not
  // per superinstruction, so the detail string (which quotes the count)
  // must match byte for byte.
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  while (1) { a[0] = a[0] + 1.0f; }\n"
      "}");
  LaunchConfig C = config1D(1, 1);
  C.MaxInstructions = 9999;
  expectParity(K, {KernelArg::buffer(0)}, {randomBuffer(1, 1, 3)}, C);
  Observed O = runMode(K, {KernelArg::buffer(0)}, {randomBuffer(1, 1, 3)}, C,
                       DispatchMode::ThreadedFused);
  EXPECT_EQ(O.Trap, TrapKind::InstructionBudget);
}

TEST(DispatchParityTest, BarrierDivergenceTrapParity) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  if (get_local_id(0) < 2) { barrier(CLK_LOCAL_MEM_FENCE); }\n"
      "  a[get_global_id(0)] = 1.0f;\n"
      "}");
  expectParity(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 4)},
               config1D(4, 4));
  Observed O = runMode(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 4)},
                       config1D(4, 4), DispatchMode::ThreadedFused);
  EXPECT_EQ(O.Trap, TrapKind::BarrierDivergence);
}

TEST(DispatchParityTest, BadLaunchTrapParity) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, int n) { a[0] = n; }");
  // Argument-count mismatch fails before execution in every mode.
  for (DispatchMode Mode : AllModes) {
    SCOPED_TRACE(std::string("dispatch mode ") + dispatchModeName(Mode));
    Observed O = runMode(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 1)},
                         config1D(1, 1), Mode);
    EXPECT_FALSE(O.Ok);
    EXPECT_EQ(O.Trap, TrapKind::BadLaunch);
  }
  expectParity(K, {KernelArg::buffer(0)}, {randomBuffer(4, 1, 1)},
               config1D(1, 1));
}

TEST(DispatchParityTest, WatchdogTrapParity) {
  // Wall-clock watchdog: the instruction count at abort is timing-
  // dependent, so only the classification (kind + both modes trapping)
  // is asserted, not counters or detail bytes.
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  while (1) { a[0] = a[0] + 1.0f; }\n"
      "}");
  LaunchConfig C = config1D(1, 1);
  C.WatchdogMs = 20;
  C.MaxInstructions = ~0ull;
  for (DispatchMode Mode : AllModes) {
    SCOPED_TRACE(std::string("dispatch mode ") + dispatchModeName(Mode));
    std::vector<BufferData> Bufs = {randomBuffer(1, 1, 1)};
    C.Dispatch = Mode;
    auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, C);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.trap(), TrapKind::WatchdogTimeout)
        << trapKindName(R.trap()) << ": " << R.errorMessage();
  }
}

//===----------------------------------------------------------------------===//
// Launch-time enum-range validation (the BadLaunch firewall in front of
// the computed-goto table).
//===----------------------------------------------------------------------===//

namespace {

/// A structurally minimal kernel around one instruction with a
/// poisoned enum payload. Never produced by the compiler; models a
/// corrupted or adversarial CompiledKernel arriving at launchKernel.
CompiledKernel poisonedKernel(Opcode Op, uint8_t Aux) {
  CompiledKernel K;
  K.Name = "poisoned";
  K.RegisterCount = 2;
  Instr I;
  I.Op = Op;
  I.Aux = Aux;
  I.Dst = 0;
  I.A = 0;
  I.B = 1;
  K.Code.push_back(I);
  Instr H;
  H.Op = Opcode::Halt;
  K.Code.push_back(H);
  return K;
}

} // namespace

TEST(DispatchParityTest, OutOfRangeAuxIsBadLaunchInEveryMode) {
  // An Aux beyond the enum range must be rejected by launch-time
  // verification as TrapKind::BadLaunch in every dispatch mode. This is
  // load-bearing for fused dispatch: prepareExecProgram specializes
  // BinOp handlers by adding Aux to the family's _Add opcode, so an
  // unvalidated Aux of 200 would index the label-address table out of
  // range — undefined behavior, not a diagnostic.
  struct { Opcode Op; uint8_t Aux; } Cases[] = {
      {Opcode::BinOp, 200},                                     // > MaxI
      {Opcode::BinOp, static_cast<uint8_t>(VmBinOp::MaxI) + 1}, // first bad
      {Opcode::UnOp, 17},                                       // > LogicNot
      {Opcode::LoadMem, 9},                                     // bad MemSpace
  };
  for (const auto &Case : Cases) {
    SCOPED_TRACE("Aux " + std::to_string(Case.Aux));
    CompiledKernel K = poisonedKernel(Case.Op, Case.Aux);
    if (Case.Op == Opcode::LoadMem)
      K.Code[0].Space = static_cast<MemSpace>(Case.Aux);
    for (DispatchMode Mode : AllModes) {
      SCOPED_TRACE(std::string("dispatch mode ") + dispatchModeName(Mode));
      LaunchConfig C = config1D(1, 1);
      C.Dispatch = Mode;
      std::vector<BufferData> Bufs;
      auto R = launchKernel(K, {}, Bufs, C);
      ASSERT_FALSE(R.ok());
      EXPECT_EQ(R.trap(), TrapKind::BadLaunch)
          << trapKindName(R.trap()) << ": " << R.errorMessage();
    }
  }
  // Control: the largest in-range Aux is not rejected as BadLaunch.
  CompiledKernel K = poisonedKernel(Opcode::BinOp,
                                    static_cast<uint8_t>(VmBinOp::MaxI));
  std::vector<BufferData> Bufs;
  auto R = launchKernel(K, {}, Bufs, config1D(1, 1));
  EXPECT_TRUE(R.ok()) << R.errorMessage();
}

//===----------------------------------------------------------------------===//
// The fusion pass itself.
//===----------------------------------------------------------------------===//

TEST(DispatchParityTest, FusionPassFusesAndKeepsSlotMapping) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = a[i] * 2.0f + 1.0f;\n"
      "}");
  ExecProgram Fused, Plain;
  prepareExecProgram(K, /*Fuse=*/true, Fused);
  prepareExecProgram(K, /*Fuse=*/false, Plain);
  EXPECT_GT(Fused.FusedPairs, 0u);
  EXPECT_EQ(Plain.FusedPairs, 0u);
  // 1:1 slot-per-pc mapping plus the trailing Halt sentinel, in both.
  EXPECT_EQ(Fused.Code.size(), K.Code.size() + 1);
  EXPECT_EQ(Plain.Code.size(), K.Code.size() + 1);
  EXPECT_EQ(static_cast<ExtOp>(Fused.Code.back().Ext), ExtOp::Halt);
  EXPECT_EQ(static_cast<ExtOp>(Plain.Code.back().Ext), ExtOp::Halt);
  EXPECT_EQ(Fused.BranchSiteCount, K.BranchSites);
}

TEST(DispatchParityTest, FusionNeverSwallowsJumpTargets) {
  // A fused pair at pc retires pc and pc+1 in one handler; if pc+1 is a
  // jump target, a branch landing there would re-execute half the pair.
  // The pass must refuse such pairs. A loop kernel has back-edges onto
  // its header, which directly exercises the constraint.
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, const int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) { s = s * 0.5f + a[i % 4]; }\n"
      "  a[get_global_id(0)] = s;\n"
      "}");
  ExecProgram P;
  prepareExecProgram(K, /*Fuse=*/true, P);
  std::vector<bool> IsTarget(K.Code.size() + 1, false);
  for (const Instr &I : K.Code)
    if (I.Op == Opcode::Jmp || I.Op == Opcode::Jz || I.Op == Opcode::Jnz)
      IsTarget[static_cast<size_t>(I.Imm)] = true;
  const uint8_t FirstFused = static_cast<uint8_t>(ExtOp::FuseLdcBin_Add);
  size_t FusedSeen = 0;
  for (size_t Pc = 0; Pc + 1 < P.Code.size(); ++Pc) {
    if (P.Code[Pc].Ext < FirstFused)
      continue;
    ++FusedSeen;
    EXPECT_FALSE(IsTarget[Pc + 1])
        << "fused pair at pc " << Pc << " swallows jump target " << (Pc + 1);
  }
  EXPECT_EQ(FusedSeen, P.FusedPairs);
}

TEST(DispatchParityTest, DispatchModeNamesRoundTrip) {
  for (DispatchMode Mode :
       {DispatchMode::Auto, DispatchMode::Switch, DispatchMode::Threaded,
        DispatchMode::ThreadedFused}) {
    auto Parsed = parseDispatchMode(dispatchModeName(Mode));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Mode);
  }
  EXPECT_FALSE(parseDispatchMode("goto").has_value());
  EXPECT_FALSE(parseDispatchMode("").has_value());
}

//===- vm/Interpreter.h - Instrumented NDRange interpreter -------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes CompiledKernel bytecode over an OpenCL NDRange with work-group
/// semantics: barriers synchronise items of a group (phase-lockstep
/// execution), __local buffers are shared per group, atomics are
/// sequentially consistent. Every instruction is instrumented; the
/// resulting ExecCounters drive the per-device analytic performance model
/// that substitutes for the paper's physical CPU/GPU testbeds.
///
/// Misbehaving kernels do not crash the host: out-of-bounds accesses,
/// barrier divergence and instruction-budget exhaustion ("timeout") are
/// reported as launch errors, which is exactly the signal the dynamic
/// checker of section 5.2 consumes.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_VM_INTERPRETER_H
#define CLGEN_VM_INTERPRETER_H

#include "support/Result.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace clgen {
namespace vm {

struct OpcodeProfile;

/// How the interpreter dispatches instructions. Execution results —
/// survivor buffer bytes, ExecCounters, trap classifications and detail
/// strings — are bit-identical across every mode (the trap-parity
/// contract, enforced by DispatchParityTest), so the mode is a pure
/// speed knob and is excluded from measurement cache keys.
enum class DispatchMode : uint8_t {
  /// Fastest available: ThreadedFused when computed goto is compiled
  /// in, else the portable switch loop.
  Auto,
  /// The reference switch-dispatch loop over raw bytecode. Profiling
  /// launches (LaunchConfig::Profile != nullptr) always run here so
  /// opcode-pair profiles see unfused sequences.
  Switch,
  /// Launch-time lowering to a dispatch-resolved execution form
  /// (vm/Compiler.h prepareExecProgram), executed with a computed-goto
  /// label-address table on GCC/Clang or a structurally identical
  /// switch loop elsewhere.
  Threaded,
  /// Threaded plus the profile-guided superinstruction fusion pass.
  ThreadedFused,
};

/// True when the build dispatches Threaded/ThreadedFused programs with
/// a computed-goto label-address table (GCC/Clang extension; forced off
/// by -DCLGS_FORCE_SWITCH_DISPATCH=ON). When false those modes run the
/// portable fallback loop — same handlers, same results.
bool threadedDispatchAvailable();

/// Stable lowercase name ("auto", "switch", "threaded", "fused").
const char *dispatchModeName(DispatchMode Mode);

/// Parses a dispatchModeName() string; nullopt on anything else.
std::optional<DispatchMode> parseDispatchMode(const std::string &Name);

/// A flat numeric buffer bound to a global buffer parameter.
struct BufferData {
  /// Lane-flattened storage: element i occupies
  /// [i*ElemWidth, (i+1)*ElemWidth).
  std::vector<double> Data;
  uint8_t ElemWidth = 1;

  size_t elements() const {
    return ElemWidth == 0 ? 0 : Data.size() / ElemWidth;
  }
  static BufferData zeros(size_t Elements, uint8_t ElemWidth) {
    BufferData B;
    B.ElemWidth = ElemWidth;
    B.Data.assign(Elements * ElemWidth, 0.0);
    return B;
  }
};

/// One launch argument, matched positionally against kernel parameters.
struct KernelArg {
  enum class Kind { Scalar, GlobalBuffer, LocalSize };
  Kind K = Kind::Scalar;
  /// Scalar: the value.
  Value Scalar;
  /// GlobalBuffer: index into the launch's buffer vector.
  int BufferIndex = -1;
  /// LocalSize: element count for a __local pointer parameter.
  size_t LocalElements = 0;

  static KernelArg scalar(double X) {
    KernelArg A;
    A.K = Kind::Scalar;
    A.Scalar = Value::scalar(X);
    return A;
  }
  static KernelArg buffer(int Index) {
    KernelArg A;
    A.K = Kind::GlobalBuffer;
    A.BufferIndex = Index;
    return A;
  }
  static KernelArg localSize(size_t Elements) {
    KernelArg A;
    A.K = Kind::LocalSize;
    A.LocalElements = Elements;
    return A;
  }
};

struct LaunchConfig {
  size_t GlobalSize[3] = {1, 1, 1};
  size_t LocalSize[3] = {1, 1, 1};
  int WorkDim = 1;
  /// Aborts the launch when the total executed instruction count exceeds
  /// this budget (the dynamic checker's timeout, section 5.2).
  uint64_t MaxInstructions = 200ull * 1000 * 1000;
  /// Executes at most this many work-groups (stride-sampled); dynamic
  /// counters are scaled back up. Buffer contents are only complete when
  /// every group ran, so correctness runs must leave this at SIZE_MAX.
  size_t MaxWorkGroups = SIZE_MAX;
  /// Wall-clock watchdog: aborts the launch once this many milliseconds
  /// of host time have elapsed, catching hangs the instruction budget
  /// cannot (stalled workers, injected stalls). 0 disables the watchdog.
  /// Checked every 32768 instructions, so it never perturbs the counters
  /// of a run that completes in time.
  uint64_t WatchdogMs = 0;
  /// Traps integer division/remainder by zero (TrapKind::DivByZero)
  /// instead of the default OpenCL-style silent zero result. Changes
  /// kernel-visible semantics, so it participates in measurement cache
  /// keys; off by default.
  bool TrapDivZero = false;
  /// When non-null, accumulates per-opcode and opcode-pair execution
  /// counts for this launch (vm/Profile.h). Pure observation: never
  /// feeds back into execution or results, and unlike ExecCounters the
  /// counts stay raw (no MaxWorkGroups scale-up). Costs one predictable
  /// branch per instruction when null. Not thread-safe: point each
  /// concurrent launch at its own profile and merge afterwards.
  /// Profiling launches always execute on the Switch path regardless of
  /// Dispatch, so opcode-pair counts see the unfused sequences fusion
  /// candidates are mined from.
  OpcodeProfile *Profile = nullptr;
  /// Instruction dispatch strategy. Results are bit-identical across
  /// modes; see DispatchMode.
  DispatchMode Dispatch = DispatchMode::Auto;
};

/// Dynamic execution counters for one launch (scaled to the full NDRange
/// when group sampling was used).
struct ExecCounters {
  uint64_t Instructions = 0;
  uint64_t ComputeOps = 0;
  uint64_t MathCalls = 0;
  uint64_t GlobalLoads = 0;
  uint64_t GlobalStores = 0;
  uint64_t CoalescedGlobal = 0;
  uint64_t LocalAccesses = 0;
  uint64_t PrivateAccesses = 0;
  uint64_t Branches = 0;
  uint64_t AtomicOps = 0;
  uint64_t Barriers = 0;
  /// Work-items in the full NDRange.
  uint64_t ItemsTotal = 0;
  /// Work-items actually simulated.
  uint64_t ItemsExecuted = 0;
  /// Average branch divergence in [0, 1]: 0 = uniform control flow within
  /// each work-group, 1 = maximally split.
  double Divergence = 0.0;

  uint64_t globalAccesses() const { return GlobalLoads + GlobalStores; }
};

/// Runs \p Kernel over the NDRange in \p Config with arguments \p Args
/// bound against \p Buffers (mutated in place). Returns counters on
/// success or a launch-failure diagnostic.
Result<ExecCounters> launchKernel(const CompiledKernel &Kernel,
                                  const std::vector<KernelArg> &Args,
                                  std::vector<BufferData> &Buffers,
                                  const LaunchConfig &Config);

} // namespace vm
} // namespace clgen

#endif // CLGEN_VM_INTERPRETER_H

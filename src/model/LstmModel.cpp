//===- model/LstmModel.cpp - LSTM language model -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Matrix kernels. Weights are stored input-major (see LstmModel.h), so
// all four primitive operations used by the forward AND backward pass
// walk contiguous memory in their inner loop:
//
//   forward gates   : gemvTAcc  (A[4H]  += sum_i x[i] * WT[i][4H])
//   forward logits  : gemvAcc   (y[r]   += dot(W[r][C], x))
//   backward dH     : gemvAcc   (dH[i]  += dot(WT[i][4H], dA))
//   weight gradients: outerAccRows (G[i][4H] += x[i] * dA[4H])
//
// Rows are blocked 2-4 at a time so loads of the shared operand are
// reused from registers, and every pointer is __restrict-qualified so
// the compiler can vectorize without aliasing checks.
//
//===----------------------------------------------------------------------===//

#include "model/LstmModel.h"

#include "store/Archive.h"

#include <cassert>
#include <cmath>

using namespace clgen;
using namespace clgen::model;

namespace {

float sigmoidf(float X) { return 1.0f / (1.0f + std::exp(-X)); }

/// y[0..N) += a * x[0..N).
inline void axpy(float A, const float *__restrict X, float *__restrict Y,
                 int N) {
  for (int I = 0; I < N; ++I)
    Y[I] += A * X[I];
}

/// dot(a, b) over N contiguous floats.
inline float dotRow(const float *__restrict A, const float *__restrict B,
                    int N) {
  float Sum = 0.0f;
  for (int I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

/// y[r] += dot(W row r, x) for W[Rows x Cols]; rows blocked in pairs so
/// each load of x serves two accumulators.
void gemvAcc(const float *__restrict W, const float *__restrict X, int Rows,
             int Cols, float *__restrict Y) {
  int R = 0;
  for (; R + 2 <= Rows; R += 2) {
    const float *__restrict W0 = W + static_cast<size_t>(R) * Cols;
    const float *__restrict W1 = W0 + Cols;
    float S0 = 0.0f, S1 = 0.0f;
    for (int C = 0; C < Cols; ++C) {
      S0 += W0[C] * X[C];
      S1 += W1[C] * X[C];
    }
    Y[R] += S0;
    Y[R + 1] += S1;
  }
  if (R < Rows)
    Y[R] += dotRow(W + static_cast<size_t>(R) * Cols, X, Cols);
}

/// y[0..Cols) += sum_r x[r] * W[r][0..Cols) for W[Rows x Cols]; rows
/// blocked in fours so y stays in registers/cache across the fused
/// updates, with a skip for all-zero coefficient quads.
void gemvTAcc(const float *__restrict W, const float *__restrict X, int Rows,
              int Cols, float *__restrict Y) {
  int R = 0;
  for (; R + 4 <= Rows; R += 4) {
    float X0 = X[R], X1 = X[R + 1], X2 = X[R + 2], X3 = X[R + 3];
    if (X0 == 0.0f && X1 == 0.0f && X2 == 0.0f && X3 == 0.0f)
      continue;
    const float *__restrict W0 = W + static_cast<size_t>(R) * Cols;
    const float *__restrict W1 = W0 + Cols;
    const float *__restrict W2 = W1 + Cols;
    const float *__restrict W3 = W2 + Cols;
    for (int C = 0; C < Cols; ++C)
      Y[C] += X0 * W0[C] + X1 * W1[C] + X2 * W2[C] + X3 * W3[C];
  }
  for (; R < Rows; ++R)
    if (X[R] != 0.0f)
      axpy(X[R], W + static_cast<size_t>(R) * Cols, Y, Cols);
}

/// G[r][0..Cols) += x[r] * d[0..Cols) for G[Rows x Cols].
void outerAccRows(float *__restrict G, const float *__restrict X,
                  const float *__restrict D, int Rows, int Cols) {
  for (int R = 0; R < Rows; ++R)
    if (X[R] != 0.0f)
      axpy(X[R], D, G + static_cast<size_t>(R) * Cols, Cols);
}

void softmaxInPlace(std::vector<float> &Logits) {
  if (Logits.empty())
    return;
  float Max = Logits[0];
  for (float L : Logits)
    Max = std::max(Max, L);
  float Sum = 0.0f;
  for (float &L : Logits) {
    L = std::exp(L - Max);
    Sum += L;
  }
  for (float &L : Logits)
    L /= Sum;
}

} // namespace

/// Per-chunk forward cache for BPTT. Layer inputs are not stored
/// separately: the input of layer L at step t IS H[t][L-1].
struct LstmModel::Tape {
  // Indexed [t][layer].
  std::vector<std::vector<std::vector<float>>> Gates; // 4H post-nonlinearity
                                                      // gate activations:
                                                      // [i f g o].
  std::vector<std::vector<std::vector<float>>> C;     // Cell states.
  std::vector<std::vector<std::vector<float>>> H;     // Hidden states.
  std::vector<std::vector<float>> Probs;              // Softmax outputs.
  std::vector<int> Inputs;                            // Token ids per step.
};

void LstmModel::initParameters() {
  Rng R(Opts.Seed);
  int H = Opts.HiddenSize;
  Layers.clear();
  Layers.resize(Opts.Layers);
  for (int L = 0; L < Opts.Layers; ++L) {
    int In = L == 0 ? V : H;
    Layers[L].In = In;
    float ScaleX = 1.0f / std::sqrt(static_cast<float>(In));
    float ScaleH = 1.0f / std::sqrt(static_cast<float>(H));
    Layers[L].WxT.assign(static_cast<size_t>(In) * 4 * H, 0.0f);
    Layers[L].WhT.assign(static_cast<size_t>(H) * 4 * H, 0.0f);
    Layers[L].B.assign(4 * H, 0.0f);
    // Draw in gate-major order (the logical W[4H x In] layout) so a given
    // seed produces the same model as before the transposed storage.
    for (int G = 0; G < 4 * H; ++G)
      for (int I = 0; I < In; ++I)
        Layers[L].WxT[static_cast<size_t>(I) * 4 * H + G] =
            static_cast<float>(R.gaussian(0.0, ScaleX));
    for (int G = 0; G < 4 * H; ++G)
      for (int I = 0; I < H; ++I)
        Layers[L].WhT[static_cast<size_t>(I) * 4 * H + G] =
            static_cast<float>(R.gaussian(0.0, ScaleH));
    // Forget-gate bias starts positive (standard trick for gradient
    // flow).
    for (int I = H; I < 2 * H; ++I)
      Layers[L].B[I] = 1.0f;
  }
  float ScaleY = 1.0f / std::sqrt(static_cast<float>(H));
  Wy.assign(static_cast<size_t>(V) * H, 0.0f);
  By.assign(V, 0.0f);
  for (float &W : Wy)
    W = static_cast<float>(R.gaussian(0.0, ScaleY));
}

size_t LstmModel::parameterCount() const {
  size_t N = Wy.size() + By.size();
  for (const Layer &L : Layers)
    N += L.WxT.size() + L.WhT.size() + L.B.size();
  return N;
}

std::unique_ptr<LanguageModel> LstmModel::clone() const {
  return std::make_unique<LstmModel>(*this);
}

void LstmModel::serialize(store::ArchiveWriter &W) const {
  W.writeI32(Opts.Layers);
  W.writeI32(Opts.HiddenSize);
  W.writeI32(Opts.Epochs);
  W.writeI32(Opts.SequenceLength);
  W.writeF32(Opts.LearningRate);
  W.writeF32(Opts.LearningRateDecay);
  W.writeI32(Opts.DecayEveryEpochs);
  W.writeF32(Opts.GradClip);
  W.writeU64(Opts.Seed);
  Vocab.serialize(W);
  W.writeI32(V);
  W.writeU32(static_cast<uint32_t>(Layers.size()));
  for (const Layer &L : Layers) {
    W.writeI32(L.In);
    W.writeF32Vector(L.WxT);
    W.writeF32Vector(L.WhT);
    W.writeF32Vector(L.B);
  }
  W.writeF32Vector(Wy);
  W.writeF32Vector(By);
}

LstmModel LstmModel::deserialize(store::ArchiveReader &R) {
  LstmOptions Opts;
  Opts.Layers = R.readI32();
  Opts.HiddenSize = R.readI32();
  Opts.Epochs = R.readI32();
  Opts.SequenceLength = R.readI32();
  Opts.LearningRate = R.readF32();
  Opts.LearningRateDecay = R.readF32();
  Opts.DecayEveryEpochs = R.readI32();
  Opts.GradClip = R.readF32();
  Opts.Seed = R.readU64();
  if (R.ok() && (Opts.Layers < 1 || Opts.Layers > 64 ||
                 Opts.HiddenSize < 1 || Opts.HiddenSize > (1 << 16)))
    R.fail("LSTM architecture out of range");

  LstmModel M(Opts);
  M.Vocab = Vocabulary::deserialize(R);
  M.V = R.readI32();
  if (R.ok() && M.V != static_cast<int>(M.Vocab.size()))
    R.fail("LSTM vocabulary size disagrees with stored vocabulary");

  uint32_t LayerCount = R.readU32();
  if (R.ok() && LayerCount != static_cast<uint32_t>(Opts.Layers))
    R.fail("LSTM layer count disagrees with stored options");
  if (!R.ok())
    return LstmModel();

  int H = Opts.HiddenSize;
  M.Layers.resize(Opts.Layers);
  for (int L = 0; L < Opts.Layers && R.ok(); ++L) {
    Layer &Lay = M.Layers[L];
    Lay.In = R.readI32();
    Lay.WxT = R.readF32Vector();
    Lay.WhT = R.readF32Vector();
    Lay.B = R.readF32Vector();
    int ExpectedIn = L == 0 ? M.V : H;
    if (R.ok() &&
        (Lay.In != ExpectedIn ||
         Lay.WxT.size() != static_cast<size_t>(Lay.In) * 4 * H ||
         Lay.WhT.size() != static_cast<size_t>(H) * 4 * H ||
         Lay.B.size() != static_cast<size_t>(4) * H))
      R.fail("LSTM layer weight blob does not match the architecture");
  }
  M.Wy = R.readF32Vector();
  M.By = R.readF32Vector();
  if (R.ok() && (M.Wy.size() != static_cast<size_t>(M.V) * H ||
                 M.By.size() != static_cast<size_t>(M.V)))
    R.fail("LSTM output projection does not match the architecture");
  if (!R.ok())
    return LstmModel();
  M.reset();
  return M;
}

void LstmModel::reset() {
  int H = Opts.HiddenSize;
  StateH.assign(Opts.Layers, std::vector<float>(H, 0.0f));
  StateC.assign(Opts.Layers, std::vector<float>(H, 0.0f));
}

void LstmModel::stepState(int TokenId,
                          std::vector<std::vector<float>> &HState,
                          std::vector<std::vector<float>> &CState,
                          std::vector<float> *LogitsOut) {
  int H = Opts.HiddenSize;
  std::vector<float> &A = ScratchA;
  for (int L = 0; L < Opts.Layers; ++L) {
    Layer &Lay = Layers[L];
    A.assign(Lay.B.begin(), Lay.B.end());
    if (L == 0) {
      // One-hot input: the embedding row of WxT, contiguous.
      axpy(1.0f, Lay.WxT.data() + static_cast<size_t>(TokenId) * 4 * H,
           A.data(), 4 * H);
    } else {
      gemvTAcc(Lay.WxT.data(), HState[L - 1].data(), Lay.In, 4 * H,
               A.data());
    }
    gemvTAcc(Lay.WhT.data(), HState[L].data(), H, 4 * H, A.data());
    // In-place state update: each element of C/H depends only on its own
    // previous value, which is read before being overwritten.
    float *__restrict CL = CState[L].data();
    float *__restrict HL = HState[L].data();
    const float *__restrict AP = A.data();
    for (int I = 0; I < H; ++I) {
      float Gi = sigmoidf(AP[I]);
      float Gf = sigmoidf(AP[H + I]);
      float Gg = std::tanh(AP[2 * H + I]);
      float Go = sigmoidf(AP[3 * H + I]);
      CL[I] = Gi * Gg + Gf * CL[I];
      HL[I] = Go * std::tanh(CL[I]);
    }
  }
  if (LogitsOut) {
    LogitsOut->assign(By.begin(), By.end());
    gemvAcc(Wy.data(), HState[Opts.Layers - 1].data(), V, H,
            LogitsOut->data());
  }
}

void LstmModel::observe(int TokenId) {
  if (StateH.empty())
    reset();
  stepState(TokenId, StateH, StateC, nullptr);
}

std::vector<double> LstmModel::nextDistribution() {
  std::vector<double> Dist;
  nextDistributionInto(Dist);
  return Dist;
}

void LstmModel::nextDistributionInto(std::vector<double> &Dist) {
  if (StateH.empty())
    reset();
  int H = Opts.HiddenSize;
  std::vector<float> &Logits = ScratchLogits;
  Logits.assign(By.begin(), By.end());
  gemvAcc(Wy.data(), StateH[Opts.Layers - 1].data(), V, H, Logits.data());
  softmaxInPlace(Logits);
  Dist.resize(V);
  for (int I = 0; I < V; ++I)
    Dist[I] = Logits[I];
}

double LstmModel::trainChunk(const std::vector<int> &Tokens, size_t Begin,
                             size_t End,
                             std::vector<std::vector<float>> &HState,
                             std::vector<std::vector<float>> &CState,
                             float Lr) {
  int H = Opts.HiddenSize;
  int T = static_cast<int>(End - Begin - 1); // Steps (predict next token).
  if (T <= 0)
    return 0.0;

  Tape Tp;
  Tp.Gates.resize(T);
  Tp.C.resize(T);
  Tp.H.resize(T);
  Tp.Probs.resize(T);
  Tp.Inputs.resize(T);

  std::vector<std::vector<float>> HPrev = HState, CPrev = CState;
  double LossBits = 0.0;
  std::vector<float> A(4 * H);

  // ---- Forward ----
  for (int Step = 0; Step < T; ++Step) {
    int TokenId = Tokens[Begin + Step];
    int Target = Tokens[Begin + Step + 1];
    Tp.Inputs[Step] = TokenId;
    Tp.Gates[Step].resize(Opts.Layers);
    Tp.C[Step].resize(Opts.Layers);
    Tp.H[Step].resize(Opts.Layers);

    for (int L = 0; L < Opts.Layers; ++L) {
      Layer &Lay = Layers[L];
      A.assign(Lay.B.begin(), Lay.B.end());
      if (L == 0) {
        axpy(1.0f, Lay.WxT.data() + static_cast<size_t>(TokenId) * 4 * H,
             A.data(), 4 * H);
      } else {
        gemvTAcc(Lay.WxT.data(), Tp.H[Step][L - 1].data(), Lay.In, 4 * H,
                 A.data());
      }
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Tp.H[Step - 1][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Tp.C[Step - 1][L];
      gemvTAcc(Lay.WhT.data(), HIn.data(), H, 4 * H, A.data());
      std::vector<float> Gate(4 * H), NewC(H), NewH(H);
      const float *__restrict AP = A.data();
      const float *__restrict CP = CIn.data();
      for (int I = 0; I < H; ++I) {
        float Gi = sigmoidf(AP[I]);
        float Gf = sigmoidf(AP[H + I]);
        float Gg = std::tanh(AP[2 * H + I]);
        float Go = sigmoidf(AP[3 * H + I]);
        Gate[I] = Gi;
        Gate[H + I] = Gf;
        Gate[2 * H + I] = Gg;
        Gate[3 * H + I] = Go;
        NewC[I] = Gi * Gg + Gf * CP[I];
        NewH[I] = Go * std::tanh(NewC[I]);
      }
      Tp.Gates[Step][L] = std::move(Gate);
      Tp.C[Step][L] = std::move(NewC);
      Tp.H[Step][L] = std::move(NewH);
    }

    std::vector<float> Logits(By);
    gemvAcc(Wy.data(), Tp.H[Step][Opts.Layers - 1].data(), V, H,
            Logits.data());
    softmaxInPlace(Logits);
    LossBits += -std::log2(std::max(Logits[Target], 1e-12f));
    Tp.Probs[Step] = std::move(Logits);
  }

  // ---- Backward ----
  std::vector<Layer> Grads(Opts.Layers);
  for (int L = 0; L < Opts.Layers; ++L) {
    Grads[L].In = Layers[L].In;
    Grads[L].WxT.assign(Layers[L].WxT.size(), 0.0f);
    Grads[L].WhT.assign(Layers[L].WhT.size(), 0.0f);
    Grads[L].B.assign(Layers[L].B.size(), 0.0f);
  }
  std::vector<float> GWy(Wy.size(), 0.0f), GBy(By.size(), 0.0f);

  // dH/dC accumulators per layer (flowing backwards in time).
  std::vector<std::vector<float>> DH(Opts.Layers,
                                     std::vector<float>(H, 0.0f));
  std::vector<std::vector<float>> DC(Opts.Layers,
                                     std::vector<float>(H, 0.0f));
  std::vector<float> DA(4 * H), DHPrev(H);

  for (int Step = T - 1; Step >= 0; --Step) {
    int Target = Tokens[Begin + Step + 1];
    // Softmax cross-entropy gradient (natural log scale; the bits/char
    // reporting is cosmetic).
    std::vector<float> DY = Tp.Probs[Step];
    DY[Target] -= 1.0f;

    outerAccRows(GWy.data(), DY.data(), Tp.H[Step][Opts.Layers - 1].data(),
                 V, H);
    for (int I = 0; I < V; ++I)
      GBy[I] += DY[I];
    // dH_last += Wy^T * dy: fused column accumulation over Wy's rows.
    gemvTAcc(Wy.data(), DY.data(), V, H, DH[Opts.Layers - 1].data());

    for (int L = Opts.Layers - 1; L >= 0; --L) {
      const std::vector<float> &Gate = Tp.Gates[Step][L];
      const std::vector<float> &CNow = Tp.C[Step][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Tp.C[Step - 1][L];
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Tp.H[Step - 1][L];

      for (int I = 0; I < H; ++I) {
        float Gi = Gate[I], Gf = Gate[H + I], Gg = Gate[2 * H + I],
              Go = Gate[3 * H + I];
        float TanhC = std::tanh(CNow[I]);
        float DHI = DH[L][I];
        float DCI = DC[L][I] + DHI * Go * (1.0f - TanhC * TanhC);
        float DGo = DHI * TanhC;
        float DGi = DCI * Gg;
        float DGg = DCI * Gi;
        float DGf = DCI * CIn[I];
        DA[I] = DGi * Gi * (1.0f - Gi);
        DA[H + I] = DGf * Gf * (1.0f - Gf);
        DA[2 * H + I] = DGg * (1.0f - Gg * Gg);
        DA[3 * H + I] = DGo * Go * (1.0f - Go);
        DC[L][I] = DCI * Gf; // To t-1.
      }

      // Parameter gradients (all contiguous row updates).
      if (L == 0) {
        int TokenId = Tp.Inputs[Step];
        axpy(1.0f, DA.data(),
             Grads[L].WxT.data() + static_cast<size_t>(TokenId) * 4 * H,
             4 * H);
      } else {
        outerAccRows(Grads[L].WxT.data(), Tp.H[Step][L - 1].data(),
                     DA.data(), Layers[L].In, 4 * H);
      }
      outerAccRows(Grads[L].WhT.data(), HIn.data(), DA.data(), H, 4 * H);
      for (int I = 0; I < 4 * H; ++I)
        Grads[L].B[I] += DA[I];

      // Propagate to h at t-1 (same layer) and to the layer below; with
      // the input-major layout both are contiguous row dot products.
      std::fill(DHPrev.begin(), DHPrev.end(), 0.0f);
      gemvAcc(Layers[L].WhT.data(), DA.data(), H, 4 * H, DHPrev.data());
      DH[L] = DHPrev;
      if (L > 0)
        gemvAcc(Layers[L].WxT.data(), DA.data(), Layers[L].In, 4 * H,
                DH[L - 1].data());
    }
  }

  if (CaptureGrads) {
    CapturedLayerGrads = Grads;
    CapturedGWy = GWy;
    CapturedGBy = GBy;
  }

  // ---- Clip and apply ----
  double Norm2 = 0.0;
  auto AccumNorm = [&Norm2](const std::vector<float> &G) {
    for (float X : G)
      Norm2 += static_cast<double>(X) * X;
  };
  for (const Layer &G : Grads) {
    AccumNorm(G.WxT);
    AccumNorm(G.WhT);
    AccumNorm(G.B);
  }
  AccumNorm(GWy);
  AccumNorm(GBy);
  double Norm = std::sqrt(Norm2);
  float Scale = Norm > Opts.GradClip
                    ? static_cast<float>(Opts.GradClip / Norm)
                    : 1.0f;
  float Step = Lr * Scale / static_cast<float>(T);

  auto Apply = [Step](std::vector<float> &W, const std::vector<float> &G) {
    for (size_t I = 0; I < W.size(); ++I)
      W[I] -= Step * G[I];
  };
  for (int L = 0; L < Opts.Layers; ++L) {
    Apply(Layers[L].WxT, Grads[L].WxT);
    Apply(Layers[L].WhT, Grads[L].WhT);
    Apply(Layers[L].B, Grads[L].B);
  }
  Apply(Wy, GWy);
  Apply(By, GBy);

  // Carry state across chunks (truncated BPTT).
  HState = Tp.H[T - 1];
  CState = Tp.C[T - 1];
  return LossBits / T;
}

void LstmModel::train(const std::vector<std::string> &Entries,
                      const std::function<void(int, double)> &Progress) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  V = static_cast<int>(Vocab.size());
  initParameters();

  // Token stream with sentinels between entries.
  std::vector<int> Stream;
  Stream.reserve(All.size() + Entries.size());
  for (const std::string &E : Entries) {
    for (char C : E)
      Stream.push_back(Vocab.idOf(C));
    Stream.push_back(Vocabulary::EndOfText);
  }
  if (Stream.size() < 2)
    return;

  float Lr = Opts.LearningRate;
  for (int Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    if (Epoch > 0 && Opts.DecayEveryEpochs > 0 &&
        Epoch % Opts.DecayEveryEpochs == 0)
      Lr *= Opts.LearningRateDecay;
    std::vector<std::vector<float>> HState(
        Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
    std::vector<std::vector<float>> CState = HState;
    double LossSum = 0.0;
    int Chunks = 0;
    size_t StepLen = static_cast<size_t>(Opts.SequenceLength);
    for (size_t Begin = 0; Begin + 1 < Stream.size(); Begin += StepLen) {
      size_t End = std::min(Begin + StepLen + 1, Stream.size());
      LossSum += trainChunk(Stream, Begin, End, HState, CState, Lr);
      ++Chunks;
    }
    if (Progress)
      Progress(Epoch, Chunks > 0 ? LossSum / Chunks : 0.0);
  }
  reset();
}

double LstmModel::sequenceLoss(const std::vector<int> &Tokens) {
  if (Tokens.size() < 2)
    return 0.0;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  double Bits = 0.0;
  std::vector<float> Logits;
  for (size_t Step = 0; Step + 1 < Tokens.size(); ++Step) {
    stepState(Tokens[Step], HState, CState, &Logits);
    softmaxInPlace(Logits);
    Bits += -std::log2(std::max(Logits[Tokens[Step + 1]], 1e-12f));
  }
  return Bits / static_cast<double>(Tokens.size() - 1);
}

double LstmModel::gradientCheck(const std::vector<int> &Tokens,
                                int SampleCount) {
  assert(V > 0 && "train or init before gradientCheck");
  // Capture the raw analytic gradients from a zero-lr BPTT pass (no
  // parameter mutation), then compare against central differences of
  // sequenceLoss on a random parameter sample.
  double MaxRelError = 0.0;
  Rng R(123);
  const float Eps = 1e-2f;

  CaptureGrads = true;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  int T = static_cast<int>(Tokens.size()) - 1;
  trainChunk(Tokens, 0, Tokens.size(), HState, CState, 0.0f);
  CaptureGrads = false;

  struct Sample {
    int Kind; // 0 WxT, 1 WhT, 2 B, 3 Wy, 4 By.
    int LayerIdx;
    size_t Offset;
    double Analytic;
  };
  std::vector<Sample> Samples;
  for (int I = 0; I < SampleCount; ++I) {
    Sample S;
    S.Kind = static_cast<int>(R.bounded(5));
    S.LayerIdx = static_cast<int>(R.bounded(Layers.size()));
    auto Pick = [&](const std::vector<float> &Grad) {
      S.Offset = R.bounded(Grad.size());
      S.Analytic = Grad[S.Offset];
    };
    switch (S.Kind) {
    case 0: Pick(CapturedLayerGrads[S.LayerIdx].WxT); break;
    case 1: Pick(CapturedLayerGrads[S.LayerIdx].WhT); break;
    case 2: Pick(CapturedLayerGrads[S.LayerIdx].B); break;
    case 3: Pick(CapturedGWy); break;
    case 4: Pick(CapturedGBy); break;
    }
    Samples.push_back(S);
  }

  // Evaluate central differences (loss reported in bits; convert the
  // analytic nat-scale gradient to bits).
  const double Ln2 = 0.6931471805599453;

  for (const Sample &S : Samples) {
    auto Ref = [&]() -> float & {
      switch (S.Kind) {
      case 0: return Layers[S.LayerIdx].WxT[S.Offset];
      case 1: return Layers[S.LayerIdx].WhT[S.Offset];
      case 2: return Layers[S.LayerIdx].B[S.Offset];
      case 3: return Wy[S.Offset];
      default: return By[S.Offset];
      }
    };
    float Saved = Ref();
    Ref() = Saved + Eps;
    double LossPlus = sequenceLoss(Tokens) * T; // Total bits.
    Ref() = Saved - Eps;
    double LossMinus = sequenceLoss(Tokens) * T;
    Ref() = Saved;
    double Numeric = (LossPlus - LossMinus) / (2.0 * Eps) * Ln2;
    // The float32 forward pass quantizes the loss at ~1e-6, so the
    // central difference carries ~1e-5 of absolute noise; the floor
    // keeps noise-level gradients from dominating the relative error.
    double Denom = std::max(1e-3, std::fabs(Numeric) + std::fabs(S.Analytic));
    double RelError = std::fabs(Numeric - S.Analytic) / Denom;
    MaxRelError = std::max(MaxRelError, RelError);
  }
  return MaxRelError;
}

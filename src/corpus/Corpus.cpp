//===- corpus/Corpus.cpp - Language corpus assembly ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"
#include "ocl/Lexer.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace clgen;
using namespace clgen::corpus;

std::string Corpus::allText() const {
  std::string All;
  for (const std::string &E : Entries) {
    All += E;
    All += '\n';
  }
  return All;
}

Corpus corpus::buildCorpus(const std::vector<ContentFile> &Files,
                           const CorpusOptions &Opts) {
  Corpus Out;
  CorpusStats &S = Out.Stats;
  S.FilesIn = Files.size();

  std::unordered_set<std::string> VocabBefore, VocabAfter;
  std::unordered_set<std::string> Dedup;

  for (const ContentFile &File : Files) {
    S.RawLines += countNonBlankLines(File.Text);

    FilterResult FR = filterContentFile(File.Text, Opts.Filter);
    if (!FR.Accepted) {
      S.FilesRejected += 1;
      S.RejectionsByReason[static_cast<int>(FR.Reason)] += 1;
      continue;
    }
    S.FilesAccepted += 1;
    S.CompilableLines += countNonBlankLines(FR.Preprocessed);
    S.KernelCount += FR.Prog->kernelCount();

    // Vocabulary before rewriting (identifiers of the preprocessed,
    // compilable text).
    for (const auto &Tok : ocl::lex(FR.Preprocessed))
      if (Tok.Kind == ocl::TokenKind::Identifier)
        VocabBefore.insert(Tok.Text);

    // Steps 2+3: rename + canonical print. The program already passed
    // Sema inside the filter, so renaming operates on FR.Prog directly.
    renameIdentifiers(*FR.Prog);
    std::string Entry = ocl::printProgram(*FR.Prog);
    for (const auto &Tok : ocl::lex(Entry))
      if (Tok.Kind == ocl::TokenKind::Identifier)
        VocabAfter.insert(Tok.Text);

    S.FinalLines += countNonBlankLines(Entry);
    if (Dedup.insert(Entry).second)
      Out.Entries.push_back(std::move(Entry));
  }

  S.VocabularyBefore = VocabBefore.size();
  S.VocabularyAfter = VocabAfter.size();
  return Out;
}

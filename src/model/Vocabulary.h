//===- model/Vocabulary.h - Character vocabulary -----------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Character-level 1-of-K vocabulary ("an output layer providing
/// normalized probability values from a 1-of-K coded vocabulary",
/// section 4.2). Token 0 is reserved as the end-of-kernel sentinel that
/// separates corpus entries.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_MODEL_VOCABULARY_H
#define CLGEN_MODEL_VOCABULARY_H

#include <string>
#include <vector>

namespace clgen {
namespace store {
class ArchiveWriter;
class ArchiveReader;
} // namespace store
namespace model {

class Vocabulary {
public:
  /// The reserved end-of-sequence token id.
  static constexpr int EndOfText = 0;

  /// Builds a vocabulary over every distinct character of \p Corpus.
  static Vocabulary fromText(const std::string &Corpus);

  /// Number of tokens (distinct characters + sentinel).
  size_t size() const { return Chars.size(); }

  /// Token id for \p C; unseen characters map to the sentinel.
  int idOf(char C) const;

  /// Character for token \p Id (sentinel renders as '\0').
  char charOf(int Id) const;

  /// Encodes text to token ids (no sentinel appended).
  std::vector<int> encode(const std::string &Text) const;

  /// Decodes ids to text, stopping at the sentinel.
  std::string decode(const std::vector<int> &Ids) const;

  /// Appends this vocabulary to an archive payload (characters in id
  /// order; the sentinel is implicit).
  void serialize(store::ArchiveWriter &W) const;

  /// Reads a vocabulary back. Trips the reader's error state (and
  /// returns an empty vocabulary) when the stored character set is
  /// malformed — duplicates or an explicit sentinel.
  static Vocabulary deserialize(store::ArchiveReader &R);

private:
  /// Chars[id] = character; Chars[0] = '\0' sentinel.
  std::vector<char> Chars = {'\0'};
  int IdByChar[256] = {0};
};

} // namespace model
} // namespace clgen

#endif // CLGEN_MODEL_VOCABULARY_H

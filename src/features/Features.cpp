//===- features/Features.cpp - Grewe et al. feature extraction ---------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "features/Features.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

using namespace clgen;
using namespace clgen::features;
using namespace clgen::vm;

StaticFeatures
features::extractStaticFeatures(const CompiledKernel &Kernel) {
  StaticFeatures F;
  for (const Instr &I : Kernel.Code) {
    switch (I.Op) {
    case Opcode::BinOp:
    case Opcode::UnOp:
    case Opcode::Cast:
      F.Comp += 1;
      break;
    case Opcode::CallB:
      // Work-item queries are address computation, not compute; math
      // builtins count as compute operations.
      F.Comp += 1;
      break;
    default:
      break;
    }
  }
  for (const AccessSite &S : Kernel.AccessSites) {
    switch (S.Space) {
    case MemSpace::Global:
      F.Mem += 1;
      F.Coalesced += S.Coalesced ? 1 : 0;
      break;
    case MemSpace::Local:
      F.LocalMem += 1;
      break;
    case MemSpace::Private:
      break;
    }
  }
  F.Branches = Kernel.BranchSites;
  return F;
}

std::vector<StaticFeatures> features::extractStaticFeaturesParallel(
    const std::vector<vm::CompiledKernel> &Kernels, unsigned Workers) {
  CLGS_TRACE_SPAN("features.extract_parallel");
  // Pre-sized output keyed by kernel index: each task writes its own
  // slot, so the merge is order-preserving by construction and the
  // result is byte-identical to the serial loop for any worker count.
  std::vector<StaticFeatures> Out(Kernels.size());
  size_t Pool = std::min<size_t>(ThreadPool::resolveWorkerCount(Workers),
                                 Kernels.size() ? Kernels.size() : 1);
  ThreadPool TP(Pool);
  TP.parallelFor(0, Kernels.size(), [&](size_t, size_t I) {
    Out[I] = extractStaticFeatures(Kernels[I]);
  });
  CLGS_COUNT_N("clgen.predict.features_rows", Kernels.size());
  return Out;
}

std::vector<double> features::greweFeatureVector(const RawFeatures &F) {
  const StaticFeatures &S = F.Static;
  double CompMem = S.Comp + S.Mem;
  double F1 = CompMem > 0 ? F.TransferBytes / CompMem : 0.0;
  double F2 = S.Mem > 0 ? S.Coalesced / S.Mem : 0.0;
  double F3 = S.Mem > 0 ? (S.LocalMem / S.Mem) * F.WgSize : 0.0;
  double F4 = S.Mem > 0 ? S.Comp / S.Mem : 0.0;
  return {F1, F2, F3, F4};
}

std::vector<double> features::extendedFeatureVector(const RawFeatures &F) {
  std::vector<double> V = greweFeatureVector(F);
  const StaticFeatures &S = F.Static;
  V.push_back(S.Comp);
  V.push_back(S.Mem);
  V.push_back(S.LocalMem);
  V.push_back(S.Coalesced);
  V.push_back(F.TransferBytes);
  V.push_back(F.WgSize);
  V.push_back(S.Branches);
  return V;
}

std::vector<std::string> features::greweFeatureNames() {
  return {"F1:transfer/(comp+mem)", "F2:coalesced/mem",
          "F3:(localmem/mem)*wgsize", "F4:comp/mem"};
}

std::vector<std::string> features::extendedFeatureNames() {
  std::vector<std::string> Names = greweFeatureNames();
  Names.insert(Names.end(), {"comp", "mem", "localmem", "coalesced",
                             "transfer", "wgsize", "branches"});
  return Names;
}

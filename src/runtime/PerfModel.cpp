//===- runtime/PerfModel.cpp - Counter-based runtime estimation --------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PerfModel.h"

#include <algorithm>
#include <cmath>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

double runtime::estimateComputeTime(const DeviceModel &Device,
                                    const ExecCounters &Counters) {
  uint64_t Uncoalesced =
      Counters.globalAccesses() >= Counters.CoalescedGlobal
          ? Counters.globalAccesses() - Counters.CoalescedGlobal
          : 0;

  double Cycles = 0.0;
  Cycles += static_cast<double>(Counters.ComputeOps) * Device.ComputeOpCost;
  Cycles += static_cast<double>(Counters.MathCalls) * Device.MathCallCost;
  Cycles += static_cast<double>(Counters.CoalescedGlobal) *
            Device.CoalescedAccessCost;
  Cycles += static_cast<double>(Uncoalesced) * Device.UncoalescedAccessCost;
  Cycles +=
      static_cast<double>(Counters.LocalAccesses) * Device.LocalAccessCost;
  Cycles += static_cast<double>(Counters.PrivateAccesses) *
            Device.PrivateAccessCost;
  Cycles += static_cast<double>(Counters.Branches) * Device.BranchCost;
  Cycles += static_cast<double>(Counters.AtomicOps) * Device.AtomicCost;
  Cycles += static_cast<double>(Counters.Barriers) * Device.BarrierCost;

  // Divergence serialises SIMT execution: scale all work by the measured
  // per-group branch divergence.
  Cycles *= 1.0 + Counters.Divergence * Device.DivergencePenalty;

  // Effective parallelism: a device only reaches its full lane count when
  // the NDRange oversubscribes it (latency hiding); GPUs need roughly 4
  // items per lane.
  double Items = static_cast<double>(std::max<uint64_t>(Counters.ItemsTotal,
                                                        1));
  double Oversubscription = Device.isGpu() ? 4.0 : 1.0;
  double Utilisation =
      std::min(1.0, Items / (Device.ParallelLanes * Oversubscription));
  double EffectiveLanes = std::max(1.0, Device.ParallelLanes * Utilisation);

  return Cycles / (Device.FrequencyGHz * 1e9 * EffectiveLanes);
}

double runtime::estimateRuntime(const DeviceModel &Device,
                                const ExecCounters &Counters,
                                const TransferProfile &Transfer) {
  double Time = estimateComputeTime(Device, Counters);
  Time += Device.LaunchOverheadUs * 1e-6;
  if (Device.TransferGBPerSec > 0.0)
    Time += static_cast<double>(Transfer.total()) /
            (Device.TransferGBPerSec * 1e9);
  return Time;
}

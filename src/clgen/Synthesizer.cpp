//===- clgen/Synthesizer.cpp - Benchmark synthesis loop -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parallel batched synthesis. Candidate generation (model sampling +
// rejection filter + normalisation) is a pure function of the candidate's
// attempt index: attempt i samples from the counter-keyed RNG stream
// split(i) on a per-worker model clone, so any number of workers computes
// the same candidate set. The accept stage then walks candidates in
// attempt order, which pins deduplication and the stop point; output is
// bit-identical across worker counts, including the serial path.
//
//===----------------------------------------------------------------------===//

#include "clgen/Synthesizer.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <unordered_set>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Outcome of one candidate attempt, produced on a worker.
struct Candidate {
  enum class Status { Incomplete, Rejected, Complete };
  Status S = Status::Incomplete;
  std::string Normalised;
  vm::CompiledKernel Kernel;
};

/// The per-attempt pipeline stage: sample -> filter -> normalise. Pure
/// given (model parameters, seed text, options, RNG stream); runs
/// concurrently on per-worker model clones.
Candidate produceCandidate(model::LanguageModel &Model,
                           const std::string &Seed,
                           const SampleOptions &Sampling,
                           const corpus::FilterOptions &FilterOpts, Rng R) {
  Candidate C;
  std::optional<std::string> Sample = sampleKernel(Model, Seed, Sampling, R);
  if (!Sample)
    return C;
  corpus::FilterResult FR = corpus::filterContentFile(*Sample, FilterOpts);
  if (!FR.Accepted) {
    C.S = Candidate::Status::Rejected;
    return C;
  }
  // Normalise (the sample is near-normal already, but renaming +
  // canonical printing makes deduplication exact) and keep the first
  // kernel.
  corpus::renameIdentifiers(*FR.Prog);
  C.Normalised = ocl::printProgram(*FR.Prog);
  C.Kernel = std::move(FR.Kernels.front());
  C.S = Candidate::Status::Complete;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// SynthesisEngine
//===----------------------------------------------------------------------===//

struct SynthesisEngine::Impl {
  model::LanguageModel &Model;
  SynthesisOptions Opts;
  Rng Base;
  std::string Seed;
  size_t MaxAttempts;
  corpus::FilterOptions FilterOpts;

  std::unordered_set<std::string> Dedup;
  std::vector<SynthesizedKernel> Kernels;
  SynthesisStats Stats;
  /// The sampling cursor: the first attempt index the accept stage has
  /// NOT consumed. Speculative wave surplus past a reached target is
  /// never counted here — the next extendTo() re-samples those attempts,
  /// and produceCandidate being pure per attempt index makes the re-run
  /// byte-identical to having consumed them the first time.
  size_t NextAttempt = 0;

  size_t Workers;
  std::vector<std::unique_ptr<model::LanguageModel>> Clones;

  Impl(model::LanguageModel &M, const SynthesisOptions &O)
      : Model(M), Opts(O), Base(O.Seed),
        Seed(O.Spec ? O.Spec->seedText() : freeModeSeed()),
        MaxAttempts(O.MaxAttempts > 0 ? O.MaxAttempts
                                      : O.TargetKernels * 100),
        Workers(ThreadPool::resolveWorkerCount(O.Workers)) {
    // Samples are drawn from the normalised corpus distribution; the
    // shim is unnecessary (and injecting it would not hurt, only slow).
    FilterOpts.UseShim = false;
    // Per-worker model clones keep stateful generation thread-private.
    if (Workers > 1) {
      for (size_t W = 0; W < Workers; ++W) {
        std::unique_ptr<model::LanguageModel> C = Model.clone();
        if (!C) {
          Clones.clear();
          Workers = 1; // Model not cloneable: fall back to serial.
          break;
        }
        Clones.push_back(std::move(C));
      }
    }
  }

  /// In-order accept stage; returns false once \p CumTarget is reached.
  bool consume(Candidate &C, size_t CumTarget, const AcceptSink &Sink) {
    CLGS_TRACE_SPAN_IDX("accept", Stats.Attempts);
    ++Stats.Attempts;
    CLGS_COUNT("clgen.synthesis.attempts");
    switch (C.S) {
    case Candidate::Status::Incomplete:
      ++Stats.IncompleteSamples;
      CLGS_COUNT("clgen.synthesis.incomplete");
      return true;
    case Candidate::Status::Rejected:
      ++Stats.RejectedByFilter;
      CLGS_COUNT("clgen.synthesis.rejected");
      return true;
    case Candidate::Status::Complete:
      break;
    }
    if (!Dedup.insert(C.Normalised).second) {
      ++Stats.Duplicates;
      CLGS_COUNT("clgen.synthesis.duplicates");
      return true;
    }
    SynthesizedKernel SK;
    SK.Source = std::move(C.Normalised);
    SK.Kernel = std::move(C.Kernel);
    Kernels.push_back(std::move(SK));
    ++Stats.Accepted;
    CLGS_COUNT("clgen.synthesis.accepted");
    // Stream the accepted kernel out before sampling continues: the
    // sink runs on this (accept-order) thread and may block, pausing
    // synthesis until downstream consumers catch up.
    if (Sink)
      Sink(Kernels.size() - 1, Kernels.back());
    return Kernels.size() < CumTarget;
  }

  void extendTo(size_t CumTarget, const AcceptSink &Sink) {
    if (Workers == 1) {
      while (Kernels.size() < CumTarget && NextAttempt < MaxAttempts) {
        Candidate C;
        {
          CLGS_TRACE_SPAN_IDX("sample", NextAttempt);
          C = produceCandidate(Model, Seed, Opts.Sampling, FilterOpts,
                               Base.split(NextAttempt));
        }
        ++NextAttempt;
        if (!consume(C, CumTarget, Sink))
          break;
      }
      return;
    }

    ThreadPool Pool(Workers);
    size_t WaveSize = Opts.WaveSize > 0
                          ? Opts.WaveSize
                          : std::max<size_t>(Workers * 4, 16);
    std::vector<Candidate> Wave;

    while (Kernels.size() < CumTarget && NextAttempt < MaxAttempts) {
      size_t Count = std::min(WaveSize, MaxAttempts - NextAttempt);
      Wave.clear();
      Wave.resize(Count);
      Pool.parallelFor(0, Count, [&](size_t Worker, size_t I) {
        CLGS_TRACE_SPAN_IDX("sample", NextAttempt + I);
        Wave[I] = produceCandidate(*Clones[Worker], Seed, Opts.Sampling,
                                   FilterOpts, Base.split(NextAttempt + I));
      });
      // Candidates past the stop point are speculative surplus: dropped
      // without touching the stats or the cursor, exactly as if they
      // were never sampled — a later extendTo() regenerates them.
      bool Done = false;
      size_t Consumed = 0;
      for (size_t I = 0; I < Count && !Done; ++I) {
        Done = !consume(Wave[I], CumTarget, Sink);
        Consumed = I + 1;
      }
      NextAttempt += Consumed;
      if (Done)
        break;
    }
  }
};

SynthesisEngine::SynthesisEngine(model::LanguageModel &Model,
                                 const SynthesisOptions &Opts)
    : P(std::make_unique<Impl>(Model, Opts)) {}

SynthesisEngine::~SynthesisEngine() = default;

size_t SynthesisEngine::extendTo(size_t CumTarget, const AcceptSink &Sink) {
  P->extendTo(CumTarget, Sink);
  return P->Kernels.size();
}

bool SynthesisEngine::exhausted() const {
  return P->NextAttempt >= P->MaxAttempts;
}

const SynthesisStats &SynthesisEngine::stats() const { return P->Stats; }

const std::vector<SynthesizedKernel> &SynthesisEngine::kernels() const {
  return P->Kernels;
}

std::vector<SynthesizedKernel> SynthesisEngine::takeKernels() {
  return std::move(P->Kernels);
}

//===----------------------------------------------------------------------===//
// One-shot wrappers
//===----------------------------------------------------------------------===//

SynthesisResult core::synthesizeKernels(model::LanguageModel &Model,
                                        const SynthesisOptions &Opts) {
  return synthesizeKernels(Model, Opts, AcceptSink());
}

SynthesisResult core::synthesizeKernels(model::LanguageModel &Model,
                                        const SynthesisOptions &Opts,
                                        const AcceptSink &Sink) {
  SynthesisEngine Eng(Model, Opts);
  Eng.extendTo(Opts.TargetKernels, Sink);
  SynthesisResult Result;
  Result.Stats = Eng.stats();
  Result.Kernels = Eng.takeKernels();
  return Result;
}

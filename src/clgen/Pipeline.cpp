//===- clgen/Pipeline.cpp - End-to-end CLgen pipeline -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "store/Archive.h"
#include "store/Serialization.h"

#include <filesystem>

using namespace clgen;
using namespace clgen::core;

ClgenPipeline
ClgenPipeline::train(const std::vector<corpus::ContentFile> &Files,
                     const PipelineOptions &Opts) {
  ClgenPipeline P;
  P.TrainingCorpus = corpus::buildCorpus(Files, Opts.Corpus);
  switch (Opts.Backend) {
  case ModelBackend::NGram: {
    auto M = std::make_unique<model::NGramModel>(Opts.NGram);
    M->train(P.TrainingCorpus.Entries);
    P.Model = std::move(M);
    break;
  }
  case ModelBackend::Lstm: {
    auto M = std::make_unique<model::LstmModel>(Opts.Lstm);
    M->train(P.TrainingCorpus.Entries);
    P.Model = std::move(M);
    break;
  }
  }
  return P;
}

SynthesisResult ClgenPipeline::synthesize(const SynthesisOptions &Opts) {
  return synthesizeKernels(*Model, Opts);
}

SynthesisResult
ClgenPipeline::synthesizeOrLoad(const std::string &CacheDir,
                                const SynthesisOptions &Opts,
                                bool *Loaded) {
  if (Loaded)
    *Loaded = false;

  // Key: model identity + every option that can change the output.
  // Workers and WaveSize are deliberately absent — the synthesis engine
  // guarantees bit-identical kernels for any value of either.
  store::ArchiveWriter Key(store::ArchiveKind::Synthesis);
  if (ArtifactFingerprint != 0) {
    Key.writeU8('F');
    Key.writeU64(ArtifactFingerprint);
  } else if (Model->backendName() == std::string_view("ngram")) {
    Key.writeU8('M');
    static_cast<const model::NGramModel &>(*Model).serialize(Key);
  } else if (Model->backendName() == std::string_view("lstm")) {
    Key.writeU8('M');
    static_cast<const model::LstmModel &>(*Model).serialize(Key);
  } else {
    return synthesize(Opts); // Unserializable model: nothing to key on.
  }
  Key.writeU64(Opts.TargetKernels);
  Key.writeU64(Opts.MaxAttempts);
  Key.writeBool(Opts.Spec.has_value());
  if (Opts.Spec) {
    Key.writeU64(Opts.Spec->ArgTypes.size());
    for (const std::string &T : Opts.Spec->ArgTypes)
      Key.writeString(T);
  }
  Key.writeU64(Opts.Sampling.MaxLength);
  Key.writeF64(Opts.Sampling.Temperature);
  Key.writeU64(Opts.Seed);

  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  std::string Path =
      CacheDir + "/synthesis-" + store::hexDigest(Key.payloadDigest()) +
      ".clgs";

  auto Opened = store::ArchiveReader::open(Path,
                                           store::ArchiveKind::Synthesis);
  if (Opened.ok()) {
    store::ArchiveReader R = Opened.take();
    SynthesisResult Out;
    Out.Stats.Attempts = R.readU64();
    Out.Stats.IncompleteSamples = R.readU64();
    Out.Stats.RejectedByFilter = R.readU64();
    Out.Stats.Duplicates = R.readU64();
    Out.Stats.Accepted = R.readU64();
    uint64_t KernelCount = R.readU64();
    for (uint64_t I = 0; I < KernelCount && R.ok(); ++I) {
      SynthesizedKernel K;
      K.Source = R.readString();
      K.Kernel = store::deserializeCompiledKernel(R);
      // The checksum authenticates bytes, not semantics: reject any
      // archive whose bytecode would not pass the compiler's own
      // invariants before it can reach the interpreter.
      if (R.ok() && !vm::verifyKernel(K.Kernel).empty())
        R.fail("stored kernel fails bytecode verification: " +
               vm::verifyKernel(K.Kernel));
      Out.Kernels.push_back(std::move(K));
    }
    if (R.finish().ok()) {
      if (Loaded)
        *Loaded = true;
      return Out;
    }
    // Corrupt entry: fall through to re-synthesis, which overwrites it.
  }

  SynthesisResult Out = synthesize(Opts);
  store::ArchiveWriter W(store::ArchiveKind::Synthesis);
  W.writeU64(Out.Stats.Attempts);
  W.writeU64(Out.Stats.IncompleteSamples);
  W.writeU64(Out.Stats.RejectedByFilter);
  W.writeU64(Out.Stats.Duplicates);
  W.writeU64(Out.Stats.Accepted);
  W.writeU64(Out.Kernels.size());
  for (const SynthesizedKernel &K : Out.Kernels) {
    W.writeString(K.Source);
    store::serializeCompiledKernel(W, K.Kernel);
  }
  (void)W.saveTo(Path); // Best-effort: a failed write just stays cold.
  return Out;
}

uint64_t
ClgenPipeline::fingerprint(const std::vector<corpus::ContentFile> &Files,
                           const PipelineOptions &Opts) {
  // Canonical byte recipe over everything training is a pure function
  // of. Any field added to the options structs must be appended here,
  // or stale artifacts would be served for the new configuration.
  store::ArchiveWriter W(store::ArchiveKind::Model);
  W.writeU64(Files.size());
  for (const corpus::ContentFile &F : Files) {
    W.writeString(F.Path);
    W.writeString(F.Text);
  }
  W.writeBool(Opts.Corpus.Filter.UseShim);
  W.writeU64(Opts.Corpus.Filter.MinInstructions);
  switch (Opts.Backend) {
  case ModelBackend::NGram:
    W.writeString("ngram");
    W.writeI32(Opts.NGram.Order);
    W.writeF64(Opts.NGram.BackoffAlpha);
    W.writeF64(Opts.NGram.UnigramSmoothing);
    break;
  case ModelBackend::Lstm:
    W.writeString("lstm");
    W.writeI32(Opts.Lstm.Layers);
    W.writeI32(Opts.Lstm.HiddenSize);
    W.writeI32(Opts.Lstm.Epochs);
    W.writeI32(Opts.Lstm.SequenceLength);
    W.writeF32(Opts.Lstm.LearningRate);
    W.writeF32(Opts.Lstm.LearningRateDecay);
    W.writeI32(Opts.Lstm.DecayEveryEpochs);
    W.writeF32(Opts.Lstm.GradClip);
    W.writeU64(Opts.Lstm.Seed);
    break;
  }
  return W.payloadDigest();
}

Result<ClgenPipeline>
ClgenPipeline::trainOrLoad(const std::string &CacheDir,
                           const std::vector<corpus::ContentFile> &Files,
                           const PipelineOptions &Opts,
                           TrainOrLoadInfo *Info) {
  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  if (Ec || !std::filesystem::is_directory(CacheDir, Ec))
    return Result<ClgenPipeline>::error(
        "cannot create artifact cache directory: " + CacheDir);

  TrainOrLoadInfo Local;
  TrainOrLoadInfo &I = Info ? *Info : Local;
  I = TrainOrLoadInfo();
  I.Fingerprint = fingerprint(Files, Opts);
  std::string Hex = store::hexDigest(I.Fingerprint);
  I.ModelPath = CacheDir + "/model-" + Hex + ".clgs";
  I.CorpusPath = CacheDir + "/corpus-" + Hex + ".clgs";

  // A fingerprint hit requires both artifacts to load cleanly; a
  // corrupt or missing file just falls back to retraining (which then
  // overwrites it atomically).
  auto StoredModel = store::loadModel(I.ModelPath);
  auto StoredCorpus = store::loadCorpus(I.CorpusPath);
  if (StoredModel.ok() && StoredCorpus.ok()) {
    ClgenPipeline P;
    P.TrainingCorpus = StoredCorpus.take();
    P.Model = StoredModel.take();
    P.ArtifactFingerprint = I.Fingerprint;
    I.LoadedModel = I.LoadedCorpus = true;
    return P;
  }

  ClgenPipeline P = train(Files, Opts);
  P.ArtifactFingerprint = I.Fingerprint;
  Status SaveModel = store::saveModel(I.ModelPath, *P.Model);
  Status SaveCorpus = store::saveCorpus(I.CorpusPath, P.TrainingCorpus);
  if (!SaveModel.ok())
    return Result<ClgenPipeline>::error("cannot persist trained model: " +
                                        SaveModel.errorMessage());
  if (!SaveCorpus.ok())
    return Result<ClgenPipeline>::error("cannot persist corpus snapshot: " +
                                        SaveCorpus.errorMessage());
  return P;
}

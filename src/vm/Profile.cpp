//===- vm/Profile.cpp - VM opcode execution profiling ---------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Profile.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace clgen;
using namespace clgen::vm;

uint64_t OpcodeProfile::instructionTotal() const {
  uint64_t Sum = 0;
  for (size_t I = 0; I < NumOpcodes; ++I)
    Sum += Count[I];
  return Sum;
}

uint64_t OpcodeProfile::branchTotal() const {
  return Count[static_cast<size_t>(Opcode::Jz)] +
         Count[static_cast<size_t>(Opcode::Jnz)];
}

void OpcodeProfile::merge(const OpcodeProfile &Other) {
  for (size_t I = 0; I < NumOpcodes; ++I)
    Count[I] += Other.Count[I];
  for (size_t I = 0; I < NumOpcodes; ++I)
    for (size_t J = 0; J < NumOpcodes; ++J)
      Pair[I][J] += Other.Pair[I][J];
  Launches += Other.Launches;
}

std::vector<OpcodePairCount> vm::topPairs(const OpcodeProfile &P, size_t N) {
  std::vector<OpcodePairCount> Pairs;
  for (size_t I = 0; I < NumOpcodes; ++I)
    for (size_t J = 0; J < NumOpcodes; ++J)
      if (P.Pair[I][J] != 0)
        Pairs.push_back(OpcodePairCount{static_cast<Opcode>(I),
                                        static_cast<Opcode>(J), P.Pair[I][J]});
  std::sort(Pairs.begin(), Pairs.end(),
            [](const OpcodePairCount &A, const OpcodePairCount &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              if (A.First != B.First)
                return A.First < B.First;
              return A.Second < B.Second;
            });
  if (Pairs.size() > N)
    Pairs.resize(N);
  return Pairs;
}

std::string vm::formatOpcodeReport(const OpcodeProfile &P, size_t TopN) {
  uint64_t Total = P.instructionTotal();
  std::string Out;
  Out += formatString("vm profile: %llu instructions, %llu branches, "
                      "%llu launches (unfused switch dispatch)\n",
                      static_cast<unsigned long long>(Total),
                      static_cast<unsigned long long>(P.branchTotal()),
                      static_cast<unsigned long long>(P.Launches));
  if (Total == 0)
    return Out;

  // Percentages in integer basis points: deterministic bytes, no float
  // formatting in the report path.
  auto Bp = [Total](uint64_t N) -> unsigned {
    return static_cast<unsigned>((N * 10000) / Total);
  };

  struct Ranked {
    Opcode Op;
    uint64_t N;
  };
  std::vector<Ranked> Ops;
  for (size_t I = 0; I < NumOpcodes; ++I)
    if (P.Count[I] != 0)
      Ops.push_back(Ranked{static_cast<Opcode>(I), P.Count[I]});
  std::sort(Ops.begin(), Ops.end(), [](const Ranked &A, const Ranked &B) {
    if (A.N != B.N)
      return A.N > B.N;
    return A.Op < B.Op;
  });
  if (Ops.size() > TopN)
    Ops.resize(TopN);

  Out += "top opcodes:\n";
  for (const Ranked &R : Ops)
    Out += formatString("  %-6s %12llu  %3u.%02u%%\n", opcodeName(R.Op),
                        static_cast<unsigned long long>(R.N), Bp(R.N) / 100,
                        Bp(R.N) % 100);

  Out += "top opcode pairs (superinstruction candidates):\n";
  for (const OpcodePairCount &PC : topPairs(P, TopN))
    Out += formatString("  %-6s-> %-6s %12llu  %3u.%02u%%\n",
                        opcodeName(PC.First), opcodeName(PC.Second),
                        static_cast<unsigned long long>(PC.Count),
                        Bp(PC.Count) / 100, Bp(PC.Count) % 100);
  return Out;
}

//===- tests/serve/ServeServerTest.cpp - clgen-serve daemon tests ---------===//
//
// Part of the CLgen reproduction. MIT license.
//
// The serve daemon end to end over its real Unix socket: cold requests
// compute and persist, warm requests load the kernel-set artifact and
// perform ZERO sampling (proved by provenance counters AND the global
// clgen.synthesis.attempts metric), identical concurrent requests —
// thread clients and fork()ed process clients — sample exactly once,
// target-0 is rejected at every layer, malformed frames are answered
// with an error and dropped, and drain lets in-flight requests finish.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace clgen;
using namespace clgen::serve;

namespace fs = std::filesystem;

namespace {

/// Fresh per-test scratch directory, removed on destruction. Lives
/// directly under /tmp so the socket path stays inside sun_path.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(fs::temp_directory_path() / ("clgen_serve_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }

private:
  fs::path Path;
};

/// A small but real daemon configuration: tiny corpus, tiny requests,
/// so a cold flight (train + sample + measure) stays test-sized.
ServerConfig testConfig(const ScratchDir &Dir) {
  ServerConfig Cfg;
  Cfg.SocketPath = Dir.file("serve.sock");
  Cfg.StoreDir = Dir.file("store");
  Cfg.FileCount = 60;
  Cfg.MeasureWorkers = 1;
  return Cfg;
}

SynthesizeRequest testRequest(uint64_t Seed = 1) {
  SynthesizeRequest Req;
  Req.TargetKernels = 3;
  Req.Seed = Seed;
  Req.Temperature = 0.5;
  return Req;
}

uint64_t counterValue(const char *Name) {
  const support::Counter *C = support::MetricsRegistry::findCounter(Name);
  return C ? C->value() : 0;
}

} // namespace

TEST(ServeServerTest, RequestKeyCoversSemanticFieldsOnly) {
  SynthesizeRequest A = testRequest(1);
  SynthesizeRequest B = testRequest(1);
  EXPECT_EQ(requestKey(A), requestKey(B));
  B.Seed = 2;
  EXPECT_NE(requestKey(A), requestKey(B));
  B = A;
  B.TargetKernels += 1;
  EXPECT_NE(requestKey(A), requestKey(B));
  B = A;
  B.Temperature = 0.75;
  EXPECT_NE(requestKey(A), requestKey(B));
}

TEST(ServeServerTest, ColdThenWarmOverTheSocket) {
  ScratchDir Dir("cold_warm");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  // Cold: trains the model, samples, measures.
  auto C1 = Client::connect(Dir.file("serve.sock"));
  ASSERT_TRUE(C1.ok()) << C1.errorMessage();
  auto Cold = C1.get().synthesize(testRequest());
  ASSERT_TRUE(Cold.ok()) << Cold.errorMessage();
  EXPECT_FALSE(Cold.get().WarmKernels);
  EXPECT_EQ(Cold.get().TrainedModels, 1u);
  EXPECT_GT(Cold.get().SampleAttempts, 0u);
  // Delivery count is corpus- and seed-dependent (the sampler may
  // exhaust its attempt budget short of the target); what the service
  // guarantees is that SOMETHING was synthesized and that warm replays
  // it byte-for-byte.
  ASSERT_GE(Cold.get().Sources.size(), 1u);

  // Warm: the kernel-set artifact replaces the sampler. The provenance
  // contract — zero models trained, zero samples drawn, zero kernels
  // executed — with byte-identical kernel bytes.
  uint64_t AttemptsBefore = counterValue("clgen.synthesis.attempts");
  auto C2 = Client::connect(Dir.file("serve.sock"));
  ASSERT_TRUE(C2.ok());
  auto Warm = C2.get().synthesize(testRequest());
  ASSERT_TRUE(Warm.ok()) << Warm.errorMessage();
  EXPECT_TRUE(Warm.get().WarmKernels);
  EXPECT_EQ(Warm.get().TrainedModels, 0u);
  EXPECT_EQ(Warm.get().SampleAttempts, 0u);
  EXPECT_EQ(Warm.get().MeasuredKernels, 0u)
      << "warm measurements must come from the result cache / ledger";
  EXPECT_EQ(counterValue("clgen.synthesis.attempts"), AttemptsBefore)
      << "the warm path must not construct a synthesis engine at all";
  EXPECT_EQ(Warm.get().KernelSetDigest, Cold.get().KernelSetDigest);
  EXPECT_EQ(Warm.get().Sources, Cold.get().Sources);
  ASSERT_EQ(Warm.get().Measurements.size(), Cold.get().Measurements.size());
  for (size_t I = 0; I < Warm.get().Measurements.size(); ++I) {
    EXPECT_EQ(Warm.get().Measurements[I].Ok, Cold.get().Measurements[I].Ok);
    EXPECT_EQ(Warm.get().Measurements[I].CpuTime,
              Cold.get().Measurements[I].CpuTime);
    EXPECT_EQ(Warm.get().Measurements[I].GpuTime,
              Cold.get().Measurements[I].GpuTime);
  }

  // A different seed is a different configuration: cold again.
  auto Other = C2.get().synthesize(testRequest(/*Seed=*/2));
  ASSERT_TRUE(Other.ok());
  EXPECT_FALSE(Other.get().WarmKernels);
  EXPECT_EQ(Other.get().TrainedModels, 0u) << "the model is shared";

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.SynthRequests, 3u);
  EXPECT_EQ(Stats.ColdComputes, 2u);
  EXPECT_EQ(Stats.WarmLoads, 1u);
  EXPECT_EQ(Stats.TrainedModels, 1u);

  S.requestDrain();
  S.wait();
  EXPECT_FALSE(fs::exists(Dir.file("serve.sock")));
}

TEST(ServeServerTest, ConcurrentThreadClientsSampleExactlyOnce) {
  // K identical concurrent requests against a cold store: whether a
  // request coalesces onto the in-flight leader or arrives late and
  // warm-loads the persisted artifact, the TOTAL work is one cold
  // compute. Proof: the global sampling counter advances by exactly a
  // single run's worth (measured against a solo reference daemon), the
  // model trains once, and every response is byte-identical.
  ScratchDir RefDir("exactly_once_ref");
  uint64_t SoloDelta = 0;
  {
    Server Ref(testConfig(RefDir));
    ASSERT_TRUE(Ref.start().ok());
    uint64_t Before = counterValue("clgen.synthesis.attempts");
    auto R = Ref.synthesize(testRequest());
    ASSERT_TRUE(R.ok());
    SoloDelta = counterValue("clgen.synthesis.attempts") - Before;
    Ref.requestDrain();
    Ref.wait();
  }
  // Telemetry can be compiled out (-DCLGS_TELEMETRY=OFF, the
  // check_overhead tree): the counter then reads 0 and the delta
  // comparison below is vacuous — the ColdComputes==1 assertion still
  // proves exactly-once through the server's own accounting.
  const bool Telemetry =
      support::MetricsRegistry::findCounter("clgen.synthesis.attempts") !=
      nullptr;
  if (Telemetry) {
    ASSERT_GT(SoloDelta, 0u);
  }

  ScratchDir Dir("exactly_once");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  constexpr int Clients = 4;
  uint64_t Before = counterValue("clgen.synthesis.attempts");
  std::vector<uint64_t> Digests(Clients, 0);
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      auto C = Client::connect(Dir.file("serve.sock"));
      if (!C.ok()) {
        Failures.fetch_add(1);
        return;
      }
      auto R = C.get().synthesize(testRequest());
      if (!R.ok()) {
        Failures.fetch_add(1);
        return;
      }
      Digests[I] = R.get().KernelSetDigest;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(counterValue("clgen.synthesis.attempts") - Before, SoloDelta)
      << "K identical concurrent requests must sample exactly once";
  for (int I = 1; I < Clients; ++I)
    EXPECT_EQ(Digests[I], Digests[0]);

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.TrainedModels, 1u);
  EXPECT_EQ(Stats.ColdComputes + Stats.WarmLoads + Stats.CoalescedRequests,
            static_cast<uint64_t>(Clients));
  EXPECT_EQ(Stats.ColdComputes, 1u)
      << "only one flight may run the cold pipeline";

  S.requestDrain();
  S.wait();
}

#ifndef _WIN32
TEST(ServeServerTest, ConcurrentForkClientsSampleExactlyOnce) {
  // The same exactly-once contract with PROCESS clients: fork() K
  // children that all fire the identical request at once. Sampling
  // happens inside the daemon process, so the counter proof lives
  // there; children just report success and the response digest.
  ScratchDir Dir("fork_clients");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  constexpr int Racers = 4;
  std::string GoFile = Dir.file("go");
  uint64_t Before = counterValue("clgen.synthesis.attempts");

  std::vector<pid_t> Children;
  for (int C = 0; C < Racers; ++C) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0) << "fork failed";
    if (Pid == 0) {
      // Child: spin until the parent releases every racer at once,
      // round-trip the request, record the digest, and _exit so no
      // gtest/atexit machinery runs twice.
      for (int Spin = 0; Spin < 5000 && !fs::exists(GoFile); ++Spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      auto Conn = Client::connect(Dir.file("serve.sock"));
      if (!Conn.ok())
        _exit(1);
      auto R = Conn.get().synthesize(testRequest());
      if (!R.ok())
        _exit(2);
      std::ofstream Out(Dir.file("digest-" + std::to_string(C)));
      Out << R.get().KernelSetDigest;
      Out.close();
      _exit(0);
    }
    Children.push_back(Pid);
  }
  { std::ofstream Go(GoFile); }

  for (pid_t Pid : Children) {
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);
  }

  // One cold run's sampling, shared by all four processes. (With
  // telemetry compiled out the counter reads 0; ColdComputes below
  // carries the exactly-once proof either way.)
  uint64_t Delta = counterValue("clgen.synthesis.attempts") - Before;
  if (support::MetricsRegistry::findCounter("clgen.synthesis.attempts")) {
    EXPECT_GT(Delta, 0u);
  }
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.TrainedModels, 1u);
  EXPECT_EQ(Stats.ColdComputes, 1u);
  EXPECT_EQ(Stats.SynthRequests, static_cast<uint64_t>(Racers));

  uint64_t Digest0 = 0;
  for (int C = 0; C < Racers; ++C) {
    std::ifstream In(Dir.file("digest-" + std::to_string(C)));
    uint64_t D = 0;
    In >> D;
    if (C == 0)
      Digest0 = D;
    EXPECT_EQ(D, Digest0) << "client " << C << " saw a different kernel set";
  }

  S.requestDrain();
  S.wait();
}

TEST(ServeServerTest, ServerRejectsZeroTargetOnTheWire) {
  // Client::synthesize validates locally, so drive the raw socket:
  // the SERVER must also reject target-0 (other client implementations
  // exist) — with an error response, not an empty success.
  ScratchDir Dir("target0");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::string Path = Dir.file("serve.sock");
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  SynthesizeRequest Zero;
  Zero.TargetKernels = 0;
  ASSERT_TRUE(writeFrame(Fd, encodeSynthesizeRequest(Zero)).ok());
  auto Raw = readFrame(Fd);
  ASSERT_TRUE(Raw.ok()) << Raw.errorMessage();
  auto Parsed = parseFrame(Raw.get());
  ASSERT_TRUE(Parsed.ok()) << Parsed.errorMessage();
  EXPECT_EQ(Parsed.get().Type, MessageType::ErrorResponse);
  EXPECT_NE(Parsed.get().Text.find("usage error"), std::string::npos)
      << Parsed.get().Text;
  ::close(Fd);

  // And the direct in-process entry point agrees.
  auto Direct = S.synthesize(Zero);
  EXPECT_FALSE(Direct.ok());
  EXPECT_GE(S.stats().InvalidRequests, 2u);
  EXPECT_EQ(S.stats().ColdComputes, 0u);

  S.requestDrain();
  S.wait();
}

TEST(ServeServerTest, MalformedFrameGetsErrorResponseAndDrop) {
  ScratchDir Dir("malformed");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::string Path = Dir.file("serve.sock");
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  // A correctly-framed request whose payload checksum is wrong: the
  // header reads fine, the parse fails, the server answers with an
  // error and drops the connection.
  std::vector<uint8_t> Frame = encodePingRequest();
  Frame[Frame.size() - 1] ^= 0xFF; // Corrupt the trailer.
  ASSERT_TRUE(writeFrame(Fd, Frame).ok());
  auto Raw = readFrame(Fd);
  ASSERT_TRUE(Raw.ok()) << Raw.errorMessage();
  auto Parsed = parseFrame(Raw.get());
  ASSERT_TRUE(Parsed.ok());
  EXPECT_EQ(Parsed.get().Type, MessageType::ErrorResponse);
  // The server hangs up after a protocol violation: the next read is
  // EOF, not a hang.
  auto Next = readFrame(Fd);
  EXPECT_FALSE(Next.ok());
  ::close(Fd);

  EXPECT_GE(S.stats().InvalidRequests, 1u);
  S.requestDrain();
  S.wait();
}
#endif // !_WIN32

TEST(ServeServerTest, DrainLetsInFlightRequestsFinish) {
  ScratchDir Dir("drain");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  // Launch a cold request (slow: trains + samples + measures), then
  // drain while it is in flight. The request must complete and be
  // answered; wait() must return.
  std::atomic<bool> GotResponse{false};
  std::atomic<bool> ResponseOk{false};
  std::thread Requester([&] {
    auto C = Client::connect(Dir.file("serve.sock"));
    if (!C.ok())
      return;
    auto R = C.get().synthesize(testRequest());
    ResponseOk.store(R.ok());
    GotResponse.store(true);
  });

  // Give the request a moment to get in flight, then drain.
  for (int Spin = 0; Spin < 1000 && S.stats().ActiveRequests == 0 &&
                     !GotResponse.load();
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  S.requestDrain();
  S.wait();
  Requester.join();

  EXPECT_TRUE(GotResponse.load());
  EXPECT_TRUE(ResponseOk.load())
      << "the in-flight request must be answered, not dropped";
  EXPECT_TRUE(S.stats().Draining);
  EXPECT_EQ(S.stats().ActiveRequests, 0u);
  // The socket is gone: new clients are refused rather than hung.
  EXPECT_FALSE(Client::connect(Dir.file("serve.sock")).ok());
}

TEST(ServeServerTest, ShutdownRequestDrainsTheDaemon) {
  ScratchDir Dir("shutdown_req");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());

  auto C = Client::connect(Dir.file("serve.sock"));
  ASSERT_TRUE(C.ok());
  auto Pong = C.get().ping();
  ASSERT_TRUE(Pong.ok());
  EXPECT_EQ(Pong.get().Version, ProtocolVersion);

  auto Text = C.get().stats();
  ASSERT_TRUE(Text.ok());
  EXPECT_NE(Text.get().find("requests_served"), std::string::npos);

  ASSERT_TRUE(C.get().shutdown().ok());
  S.wait();
  EXPECT_TRUE(S.draining());
  EXPECT_FALSE(fs::exists(Dir.file("serve.sock")));
}

TEST(ServeServerTest, BackgroundSweeperRunsAndReports) {
  ScratchDir Dir("sweeper");
  ServerConfig Cfg = testConfig(Dir);
  Cfg.SweepIntervalMs = 20;
  Cfg.SweepBudgetBytes = 0; // Validate/quarantine only: evict nothing.
  Server S(Cfg);
  ASSERT_TRUE(S.start().ok());

  // A request populates the store; then the sweeper gets a few ticks.
  auto R = S.synthesize(testRequest());
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  for (int Spin = 0; Spin < 2000 && S.stats().Sweeps < 2; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(S.stats().Sweeps, 2u);

  S.requestDrain();
  S.wait();

  // Budget-0 sweeps evict nothing, so the store is still warm.
  ServerConfig Cfg2 = testConfig(Dir);
  Server S2(Cfg2);
  ASSERT_TRUE(S2.start().ok());
  auto Warm = S2.synthesize(testRequest());
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(Warm.get().WarmKernels)
      << "sweeps must never evict within budget / mutate survivors";
  EXPECT_EQ(Warm.get().SampleAttempts, 0u);
  S2.requestDrain();
  S2.wait();
}

TEST(ServeServerTest, RenderStatsIsKeyValueLines) {
  ScratchDir Dir("render");
  Server S(testConfig(Dir));
  ASSERT_TRUE(S.start().ok());
  std::string Text = S.renderStats();
  for (const char *Key :
       {"requests_served", "synth_requests", "invalid_requests",
        "cold_computes", "warm_loads", "coalesced_requests",
        "trained_models", "sweeps", "sweep_evicted_bytes",
        "active_requests", "draining"})
    EXPECT_NE(Text.find(Key), std::string::npos) << Key;
  S.requestDrain();
  S.wait();
}

TEST(ServeCoalescerTest, FollowersShareTheLeadersResult) {
  // The coalescer in isolation, with a compute we can hold open: the
  // leader blocks until every follower is queued, so followers MUST
  // take the in-flight path — this is the deterministic exactly-once
  // unit proof (the server-level tests prove it end to end).
  Coalescer<int> Flights;
  std::atomic<int> Computes{0};
  std::atomic<int> Waiting{0};
  constexpr int Followers = 3;

  std::vector<std::thread> Threads;
  std::vector<int> Values(Followers + 1, -1);
  std::vector<char> WasLeader(Followers + 1, 0);
  for (int I = 0; I < Followers + 1; ++I)
    Threads.emplace_back([&, I] {
      Waiting.fetch_add(1);
      bool Leader = false;
      auto R = Flights.run(
          /*Key=*/42,
          [&]() -> Result<int> {
            Computes.fetch_add(1);
            // Hold the flight open until every thread has arrived, so
            // all the others are provably concurrent followers.
            for (int Spin = 0;
                 Spin < 5000 && Waiting.load() < Followers + 1; ++Spin)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return 1234;
          },
          &Leader);
      Values[I] = R.ok() ? R.get() : -1;
      WasLeader[I] = Leader ? 1 : 0;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Computes.load(), 1) << "exactly one leader computes";
  int Leaders = 0;
  for (int I = 0; I < Followers + 1; ++I) {
    EXPECT_EQ(Values[I], 1234);
    Leaders += WasLeader[I];
  }
  EXPECT_EQ(Leaders, 1);
  EXPECT_EQ(Flights.leaders(), 1u);
  EXPECT_EQ(Flights.followers(), static_cast<uint64_t>(Followers));
  EXPECT_EQ(Flights.inFlight(), 0u);

  // Distinct keys never coalesce; a finished flight's key recomputes.
  auto Again = Flights.run(42, [] { return Result<int>(5678); });
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(Again.get(), 5678);
  EXPECT_EQ(Flights.leaders(), 2u);
}

//===- examples/benchmark_runner.cpp - Host driver walk-through ---------------===//
//
// Exercises the section 5 host driver directly: payload generation, the
// four-execution dynamic checker, instrumented execution and per-device
// runtime estimation — including what happens to kernels that do NOT
// perform useful work.
//
//===----------------------------------------------------------------------===//

#include "runtime/DynamicChecker.h"
#include "runtime/HostDriver.h"
#include "vm/Compiler.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clgen;

namespace {

void tryKernel(const char *Label, const char *Source) {
  std::printf("=== %s ===\n", Label);
  auto Kernel = vm::compileFirstKernel(Source);
  if (!Kernel.ok()) {
    std::printf("rejected at compile time: %s\n\n",
                Kernel.errorMessage().c_str());
    return;
  }
  Rng R(42);
  runtime::CheckOptions COpts;
  auto CR = runtime::checkKernel(Kernel.get(), COpts, R);
  std::printf("dynamic checker: %s%s\n",
              runtime::checkOutcomeName(CR.Outcome),
              CR.Detail.empty() ? "" : (" - " + CR.Detail).c_str());
  if (!CR.useful()) {
    std::printf("\n");
    return;
  }
  runtime::DriverOptions DOpts;
  DOpts.GlobalSize = 65536;
  auto M = runtime::runBenchmark(Kernel.get(), runtime::amdPlatform(),
                                 DOpts);
  if (M.ok()) {
    const auto &C = M.get().Counters;
    std::printf("executed %llu instructions (%llu global loads, %llu "
                "stores, %.0f%% coalesced)\n",
                static_cast<unsigned long long>(C.Instructions),
                static_cast<unsigned long long>(C.GlobalLoads),
                static_cast<unsigned long long>(C.GlobalStores),
                C.globalAccesses()
                    ? 100.0 * C.CoalescedGlobal / C.globalAccesses()
                    : 0.0);
    std::printf("transfer: %llu bytes; CPU %.3f ms vs GPU %.3f ms\n",
                static_cast<unsigned long long>(M.get().Transfer.total()),
                M.get().CpuTime * 1e3, M.get().GpuTime * 1e3);
  }
  std::printf("\n");
}

} // namespace

int main() {
  tryKernel("useful work: guarded vector scale",
            "__kernel void scale(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { a[i] = a[i] * 2.0f + 1.0f; }\n"
            "}\n");

  tryKernel("no output: writes nothing",
            "__kernel void silent(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  float x = a[i % n] * 2.0f;\n"
            "  x = x + 1.0f;\n"
            "}\n");

  tryKernel("input insensitive: constant output",
            "__kernel void constant_out(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { a[i] = 4.0f; }\n"
            "}\n");

  tryKernel("crash: out-of-bounds write",
            "__kernel void oob(__global float* a, const int n) {\n"
            "  a[get_global_id(0) + n] = 1.0f;\n"
            "}\n");

  tryKernel("timeout: runs forever",
            "__kernel void spin(__global float* a, const int n) {\n"
            "  while (1) { a[0] += 1.0f; }\n"
            "}\n");

  tryKernel("rejected: undeclared identifier (shim-class failure)",
            "__kernel void broken(__global float* a) {\n"
            "  a[get_global_id(0)] = MISSING_CONSTANT;\n"
            "}\n");

  // Batched measurement: the driver fans a kernel set across a worker
  // pool (results deterministic and index-aligned regardless of worker
  // count) — the consumer side of the parallel synthesis engine.
  std::printf("=== batched measurement (worker pool) ===\n");
  std::vector<vm::CompiledKernel> Batch;
  const char *Variants[] = {"a[i] = a[i] * 2.0f;", "a[i] = a[i] + 7.0f;",
                            "a[i] = a[i] * a[i];", "a[i] = -a[i];"};
  for (const char *Body : Variants) {
    std::string Src = "__kernel void v(__global float* a, const int n) {\n"
                      "  int i = get_global_id(0);\n"
                      "  if (i < n) { " +
                      std::string(Body) +
                      " }\n"
                      "}\n";
    Batch.push_back(vm::compileFirstKernel(Src).take());
  }
  runtime::DriverOptions BatchOpts;
  BatchOpts.GlobalSize = 16384;
  auto T0 = std::chrono::steady_clock::now();
  auto Results =
      runtime::runBenchmarkBatch(Batch, runtime::amdPlatform(), BatchOpts);
  auto T1 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Results.size(); ++I) {
    if (!Results[I].ok()) {
      std::printf("kernel %zu: %s\n", I, Results[I].errorMessage().c_str());
      continue;
    }
    std::printf("kernel %zu: CPU %.3f ms vs GPU %.3f ms -> %s\n", I,
                Results[I].get().CpuTime * 1e3,
                Results[I].get().GpuTime * 1e3,
                Results[I].get().gpuIsBest() ? "GPU" : "CPU");
  }
  std::printf("batch wall time: %.1f ms\n",
              std::chrono::duration<double, std::milli>(T1 - T0).count());
  return 0;
}

//===- vm/Bytecode.cpp - bytecode verification and disassembly --------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "ocl/Builtins.h"
#include "support/StringUtils.h"

using namespace clgen;
using namespace clgen::vm;

const char *clgen::vm::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LoadConst: return "ldc";
  case Opcode::Mov: return "mov";
  case Opcode::BinOp: return "bin";
  case Opcode::UnOp: return "un";
  case Opcode::Cast: return "cast";
  case Opcode::Broadcast: return "bcast";
  case Opcode::Swizzle: return "swz";
  case Opcode::InsertLanes: return "ins";
  case Opcode::BuildVec: return "bvec";
  case Opcode::LoadMem: return "ld";
  case Opcode::StoreMem: return "st";
  case Opcode::VLoad: return "vld";
  case Opcode::VStore: return "vst";
  case Opcode::CallB: return "call";
  case Opcode::Atomic: return "atom";
  case Opcode::Jmp: return "jmp";
  case Opcode::Jz: return "jz";
  case Opcode::Jnz: return "jnz";
  case Opcode::Barrier: return "bar";
  case Opcode::Halt: return "halt";
  }
  return "?";
}

static const char *spaceName(MemSpace S) {
  switch (S) {
  case MemSpace::Global: return "g";
  case MemSpace::Local: return "l";
  case MemSpace::Private: return "p";
  }
  return "?";
}

std::string vm::verifyKernel(const CompiledKernel &K) {
  auto CheckReg = [&](uint16_t R) { return R < K.RegisterCount; };
  size_t GlobalSlots = K.bufferParamCount();

  for (size_t I = 0; I < K.Code.size(); ++I) {
    const Instr &In = K.Code[I];
    auto Bad = [&](const char *What) {
      return formatString("instr %zu (%s): %s", I, opcodeName(In.Op), What);
    };
    switch (In.Op) {
    case Opcode::LoadConst:
      if (!CheckReg(In.Dst))
        return Bad("dst register out of range");
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= K.Consts.size())
        return Bad("constant index out of range");
      break;
    case Opcode::Mov:
      if (!CheckReg(In.Dst) || !CheckReg(In.A))
        return Bad("register out of range");
      break;
    case Opcode::UnOp:
      if (!CheckReg(In.Dst) || !CheckReg(In.A))
        return Bad("register out of range");
      if (In.Aux > static_cast<uint8_t>(VmUnOp::LogicNot))
        return Bad("unop aux out of range");
      break;
    case Opcode::Cast:
      if (!CheckReg(In.Dst) || !CheckReg(In.A))
        return Bad("register out of range");
      if (In.Aux > static_cast<uint8_t>(ocl::Scalar::Half))
        return Bad("cast aux out of range");
      break;
    case Opcode::Broadcast:
      if (!CheckReg(In.Dst) || !CheckReg(In.A))
        return Bad("register out of range");
      if (In.B < 1 || In.B > 16)
        return Bad("broadcast width out of range");
      break;
    case Opcode::BinOp:
      if (!CheckReg(In.Dst) || !CheckReg(In.A) || !CheckReg(In.B))
        return Bad("register out of range");
      if (In.Aux > static_cast<uint8_t>(VmBinOp::MaxI))
        return Bad("binop aux out of range");
      break;
    case Opcode::Swizzle:
    case Opcode::InsertLanes:
      if (!CheckReg(In.Dst))
        return Bad("register out of range");
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= K.Masks.size())
        return Bad("mask index out of range");
      if (K.Masks[In.Imm].size() > 16)
        return Bad("mask wider than a register");
      for (uint8_t Lane : K.Masks[In.Imm])
        if (Lane >= 16)
          return Bad("mask lane out of range");
      break;
    case Opcode::BuildVec:
    case Opcode::CallB:
      if (!CheckReg(In.Dst))
        return Bad("register out of range");
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= K.ArgLists.size())
        return Bad("arg list index out of range");
      if (In.Op == Opcode::BuildVec && K.ArgLists[In.Imm].size() > 16)
        return Bad("vector wider than a register");
      if (In.Op == Opcode::CallB &&
          In.Aux > static_cast<uint8_t>(ocl::BuiltinOp::AtomicXchg))
        return Bad("builtin aux out of range");
      for (uint16_t R : K.ArgLists[In.Imm])
        if (!CheckReg(R))
          return Bad("arg register out of range");
      break;
    case Opcode::LoadMem:
    case Opcode::StoreMem:
    case Opcode::VLoad:
    case Opcode::VStore:
    case Opcode::Atomic: {
      if (!CheckReg(In.A) || !CheckReg(In.B) || !CheckReg(In.Dst))
        return Bad("register out of range");
      if (In.Space > MemSpace::Private)
        return Bad("address space out of range");
      if (In.Op == Opcode::Atomic &&
          In.Aux > static_cast<uint8_t>(ocl::BuiltinOp::AtomicXchg))
        return Bad("atomic aux out of range");
      if ((In.Op == Opcode::VLoad || In.Op == Opcode::VStore) &&
          (In.WidthField < 1 || In.WidthField > 16))
        return Bad("vector width out of range");
      size_t SlotLimit = 0;
      switch (In.Space) {
      case MemSpace::Global: SlotLimit = GlobalSlots; break;
      case MemSpace::Local: SlotLimit = K.LocalBuffers.size(); break;
      case MemSpace::Private: SlotLimit = K.PrivateBuffers.size(); break;
      }
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= SlotLimit)
        return Bad("buffer slot out of range");
      break;
    }
    case Opcode::Jmp:
    case Opcode::Jz:
    case Opcode::Jnz:
      if (!CheckReg(In.A))
        return Bad("register out of range");
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) > K.Code.size())
        return Bad("jump target out of range");
      break;
    case Opcode::Barrier:
    case Opcode::Halt:
      break;
    }
  }

  if (K.Code.empty() || K.Code.back().Op != Opcode::Halt)
    return "kernel does not end with halt";
  return std::string();
}

std::string vm::disassemble(const CompiledKernel &K) {
  std::string Out = formatString("kernel %s: %zu instrs, %u regs, %zu "
                                 "consts, %zu global slots, %zu local, %zu "
                                 "private\n",
                                 K.Name.c_str(), K.Code.size(),
                                 K.RegisterCount, K.Consts.size(),
                                 K.bufferParamCount(), K.LocalBuffers.size(),
                                 K.PrivateBuffers.size());
  for (size_t I = 0; I < K.Code.size(); ++I) {
    const Instr &In = K.Code[I];
    Out += formatString("%4zu  %-6s", I, opcodeName(In.Op));
    switch (In.Op) {
    case Opcode::LoadConst:
      Out += formatString("r%u <- c%d (%.6g)", In.Dst, In.Imm,
                          K.Consts[In.Imm].x());
      break;
    case Opcode::Mov:
      Out += formatString("r%u <- r%u", In.Dst, In.A);
      break;
    case Opcode::BinOp:
      Out += formatString("r%u <- r%u op%u r%u", In.Dst, In.A, In.Aux, In.B);
      break;
    case Opcode::UnOp:
    case Opcode::Cast:
      Out += formatString("r%u <- op%u r%u", In.Dst, In.Aux, In.A);
      break;
    case Opcode::Broadcast:
      Out += formatString("r%u <- splat(r%u, %u)", In.Dst, In.A, In.B);
      break;
    case Opcode::Swizzle:
    case Opcode::InsertLanes:
      Out += formatString("r%u <- r%u mask%d", In.Dst,
                          In.Op == Opcode::Swizzle ? In.A : In.B, In.Imm);
      break;
    case Opcode::BuildVec:
    case Opcode::CallB:
      Out += formatString("r%u <- fn%u args%d", In.Dst, In.Aux, In.Imm);
      break;
    case Opcode::LoadMem:
      Out += formatString("r%u <- %s[%d][r%u]%s", In.Dst,
                          spaceName(In.Space), In.Imm, In.A,
                          In.Coalesced ? " (coalesced)" : "");
      break;
    case Opcode::StoreMem:
      Out += formatString("%s[%d][r%u] <- r%u%s", spaceName(In.Space),
                          In.Imm, In.A, In.B,
                          In.Coalesced ? " (coalesced)" : "");
      break;
    case Opcode::VLoad:
      Out += formatString("r%u <- %s[%d][r%u..+%u]", In.Dst,
                          spaceName(In.Space), In.Imm, In.A, In.WidthField);
      break;
    case Opcode::VStore:
      Out += formatString("%s[%d][r%u..+%u] <- r%u", spaceName(In.Space),
                          In.Imm, In.A, In.WidthField, In.B);
      break;
    case Opcode::Atomic:
      Out += formatString("r%u <- atomic%u %s[%d][r%u], r%u", In.Dst,
                          In.Aux, spaceName(In.Space), In.Imm, In.A, In.B);
      break;
    case Opcode::Jmp:
      Out += formatString("-> %d", In.Imm);
      break;
    case Opcode::Jz:
    case Opcode::Jnz:
      Out += formatString("r%u -> %d", In.A, In.Imm);
      break;
    case Opcode::Barrier:
    case Opcode::Halt:
      break;
    }
    Out += '\n';
  }
  return Out;
}

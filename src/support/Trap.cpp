//===- support/Trap.cpp - Structured failure taxonomy ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trap.h"

namespace clgen {

const char *trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::OutOfBounds:
    return "out-of-bounds";
  case TrapKind::BarrierDivergence:
    return "barrier-divergence";
  case TrapKind::InstructionBudget:
    return "instruction-budget";
  case TrapKind::WatchdogTimeout:
    return "watchdog-timeout";
  case TrapKind::DivByZero:
    return "div-by-zero";
  case TrapKind::CompileError:
    return "compile-error";
  case TrapKind::BadLaunch:
    return "bad-launch";
  case TrapKind::CheckNoOutput:
    return "check-no-output";
  case TrapKind::CheckInputInsensitive:
    return "check-input-insensitive";
  case TrapKind::CheckNonDeterministic:
    return "check-non-deterministic";
  case TrapKind::Injected:
    return "injected";
  case TrapKind::IoError:
    return "io-error";
  case TrapKind::Unknown:
    return "unknown";
  }
  return "unknown";
}

bool isTransientTrap(TrapKind Kind) {
  return Kind == TrapKind::Injected || Kind == TrapKind::IoError;
}

bool isDeterministicTrap(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::OutOfBounds:
  case TrapKind::BarrierDivergence:
  case TrapKind::InstructionBudget:
  case TrapKind::DivByZero:
  case TrapKind::CompileError:
  case TrapKind::BadLaunch:
  case TrapKind::CheckNoOutput:
  case TrapKind::CheckInputInsensitive:
  case TrapKind::CheckNonDeterministic:
    return true;
  case TrapKind::None:
  case TrapKind::WatchdogTimeout:
  case TrapKind::Injected:
  case TrapKind::IoError:
  case TrapKind::Unknown:
    return false;
  }
  return false;
}

TrapKind trapKindFromTag(uint8_t Tag) {
  if (Tag > static_cast<uint8_t>(TrapKind::Unknown))
    return TrapKind::Unknown;
  return static_cast<TrapKind>(Tag);
}

} // namespace clgen

//===- bench/micro_perf.cpp - google-benchmark microbenchmarks ----------------===//
//
// Throughput microbenchmarks for the pipeline's hot components: frontend
// (lex/parse/sema), bytecode compilation, interpretation, feature
// extraction, n-gram sampling and LSTM stepping. Not a paper experiment;
// useful for tracking the simulator's own performance.
//
//===----------------------------------------------------------------------===//

#include "clgen/Sampler.h"
#include "features/Features.h"
#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "ocl/Parser.h"
#include "ocl/Sema.h"
#include "suites/KernelPatterns.h"
#include "vm/Compiler.h"
#include "vm/Interpreter.h"

#include <benchmark/benchmark.h>

using namespace clgen;

namespace {

const std::string &sampleSource() {
  static const std::string Src = suites::renderPattern(
      suites::PatternKind::NBody, suites::PatternStyle(), "bench_kernel");
  return Src;
}

void BM_ParseAndSema(benchmark::State &State) {
  for (auto _ : State) {
    auto R = ocl::parseProgram(sampleSource());
    ocl::analyze(*R.get());
    benchmark::DoNotOptimize(R.get());
  }
  State.SetBytesProcessed(State.iterations() * sampleSource().size());
}
BENCHMARK(BM_ParseAndSema);

void BM_CompileKernel(benchmark::State &State) {
  for (auto _ : State) {
    auto K = vm::compileFirstKernel(sampleSource());
    benchmark::DoNotOptimize(K.get().Code.size());
  }
}
BENCHMARK(BM_CompileKernel);

void BM_InterpretKernel(benchmark::State &State) {
  auto K = vm::compileFirstKernel(sampleSource()).take();
  std::vector<vm::BufferData> Bufs = {
      vm::BufferData::zeros(1024, 1), vm::BufferData::zeros(1024, 1),
      vm::BufferData::zeros(1024, 1)};
  vm::LaunchConfig Config;
  Config.GlobalSize[0] = 1024;
  Config.LocalSize[0] = 64;
  uint64_t Instructions = 0;
  for (auto _ : State) {
    auto R = vm::launchKernel(K,
                              {vm::KernelArg::buffer(0),
                               vm::KernelArg::buffer(1),
                               vm::KernelArg::buffer(2),
                               vm::KernelArg::scalar(1024)},
                              Bufs, Config);
    Instructions += R.get().Instructions;
    benchmark::DoNotOptimize(R.get().Instructions);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpretKernel);

void BM_FeatureExtraction(benchmark::State &State) {
  auto K = vm::compileFirstKernel(sampleSource()).take();
  for (auto _ : State) {
    auto F = features::extractStaticFeatures(K);
    benchmark::DoNotOptimize(F.Comp);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_NGramSampleChar(benchmark::State &State) {
  model::NGramModel Model;
  Model.train({sampleSource()});
  Model.reset();
  Model.observeText("__kernel void A(");
  Rng R(1);
  for (auto _ : State) {
    auto Dist = Model.nextDistribution();
    size_t Tok = R.weighted(Dist);
    Model.observe(static_cast<int>(Tok));
    benchmark::DoNotOptimize(Tok);
  }
}
BENCHMARK(BM_NGramSampleChar);

void BM_LstmStep(benchmark::State &State) {
  model::LstmOptions Opts;
  Opts.Epochs = 1;
  Opts.HiddenSize = 64;
  model::LstmModel Model(Opts);
  Model.train({sampleSource().substr(0, 512)});
  Model.reset();
  for (auto _ : State) {
    Model.observe(1);
    auto Dist = Model.nextDistribution();
    benchmark::DoNotOptimize(Dist[0]);
  }
}
BENCHMARK(BM_LstmStep);

} // namespace

BENCHMARK_MAIN();

//===- suites/Runner.h - Catalogue measurement harness -----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures every (kernel, dataset) pair of a benchmark catalogue on a
/// simulated platform, producing the Observation records the predictive
/// models train and evaluate on (section 7.2: "Each experiment is
/// repeated five times and the average execution time is recorded" — our
/// simulator is deterministic, so a single execution suffices and the
/// repetition count is not modelled).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUITES_RUNNER_H
#define CLGEN_SUITES_RUNNER_H

#include "predict/Evaluation.h"
#include "runtime/HostDriver.h"
#include "suites/Catalogue.h"

#include <vector>

namespace clgen {
namespace suites {

struct RunnerOptions {
  /// Work-group sampling cap per launch (counters are rescaled).
  size_t MaxSimulatedGroups = 24;
  uint64_t Seed = 0x5EEDCAFE;
  /// Skip kernels that fail to compile or launch instead of aborting.
  bool SkipFailures = true;
};

/// Runs every kernel x dataset of \p Catalogue on \p P. Returns one
/// observation per successful run, in catalogue order.
std::vector<predict::Observation>
measureCatalogue(const std::vector<BenchmarkKernel> &Catalogue,
                 const runtime::Platform &P,
                 const RunnerOptions &Opts = RunnerOptions());

} // namespace suites
} // namespace clgen

#endif // CLGEN_SUITES_RUNNER_H

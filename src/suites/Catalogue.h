//===- suites/Catalogue.h - Benchmark suite catalogue ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark catalogue reproducing Table 3 of the paper: the seven
/// most frequently used GPGPU benchmark suites (71 benchmarks, 256
/// kernels), with NPB carrying its five problem classes (S, W, A, B, C)
/// and Parboil its 1-4 packaged datasets. Kernel bodies are drawn from
/// the pattern library with per-suite stylistic signatures so that each
/// suite occupies a distinct region of the feature space — the property
/// that drives the cross-suite generalisation failures of section 2.
///
/// Also carries the Figure 2 survey data (average number of benchmarks
/// used in 25 GPGPU papers from CGO/HiPC/PACT/PPoPP 2013-2016, by suite
/// of origin).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUITES_CATALOGUE_H
#define CLGEN_SUITES_CATALOGUE_H

#include "suites/KernelPatterns.h"

#include <string>
#include <vector>

namespace clgen {
namespace suites {

struct DatasetSpec {
  std::string Name;
  size_t GlobalSize;
  size_t LocalSize = 64;
};

/// One kernel of one benchmark, with every dataset it ships with.
struct BenchmarkKernel {
  std::string Suite;
  std::string Benchmark;
  std::string KernelName;
  PatternKind Pattern;
  std::string Source;
  std::vector<DatasetSpec> Datasets;
};

/// Builds the full 7-suite catalogue (deterministic).
std::vector<BenchmarkKernel> buildCatalogue();

/// Builds only the named suite ("NPB", "Rodinia", "NVIDIA SDK",
/// "AMD SDK", "Parboil", "PolyBench", "SHOC").
std::vector<BenchmarkKernel> buildSuite(const std::string &Name);

/// Names of the seven suites in canonical order.
std::vector<std::string> suiteNames();

/// Table 3 row: suite, version, benchmark count, kernel count.
struct SuiteSummary {
  std::string Name;
  std::string Version;
  int Benchmarks = 0;
  int Kernels = 0;
};
std::vector<SuiteSummary> catalogueSummary(
    const std::vector<BenchmarkKernel> &Catalogue);

/// Figure 2: average number of benchmarks per paper, by suite of origin.
struct SurveyEntry {
  std::string Origin;
  double AvgBenchmarksPerPaper;
};
std::vector<SurveyEntry> gpgpuSurvey();

} // namespace suites
} // namespace clgen

#endif // CLGEN_SUITES_CATALOGUE_H

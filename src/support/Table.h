//===- support/Table.h - ASCII tables and bar charts ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering helpers for the benchmark harnesses. Every table and figure of
/// the paper is regenerated as text: tables as aligned ASCII grids, figures
/// as labelled horizontal bar charts or (x, y) series dumps.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_TABLE_H
#define CLGEN_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace clgen {

/// An ASCII table with a header row and aligned columns.
class TextTable {
public:
  /// Sets the column headers; must be called before adding rows.
  void setHeader(std::vector<std::string> Names);

  /// Appends one row. The number of cells must match the header width.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table with column alignment and a separator rule under the
  /// header.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// A horizontal bar chart: one labelled bar per entry, scaled so the
/// largest value spans \p Width characters.
class BarChart {
public:
  explicit BarChart(std::string Title, size_t Width = 50)
      : Title(std::move(Title)), Width(Width) {}

  /// Appends a bar. \p Detail (optional) is printed after the value.
  void addBar(std::string Label, double Value, std::string Detail = "");

  std::string render() const;

private:
  struct Bar {
    std::string Label;
    double Value;
    std::string Detail;
  };
  std::string Title;
  size_t Width;
  std::vector<Bar> Bars;
};

/// Prints a section banner used by the bench binaries, e.g.
/// "== Figure 7a: ... ==".
std::string sectionBanner(const std::string &Title);

} // namespace clgen

#endif // CLGEN_SUPPORT_TABLE_H
